"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate between front-end (HPF), compilation, runtime and machine
model failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "HPFSyntaxError",
    "HPFSemanticError",
    "DistributionError",
    "AlignmentError",
    "CompilationError",
    "PlanVerificationError",
    "CostModelError",
    "MemoryAllocationError",
    "RuntimeExecutionError",
    "DistributedExecutionError",
    "IOEngineError",
    "TransientIOError",
    "SlabCorruptionError",
    "CollectiveError",
    "MachineConfigurationError",
    "ExperimentError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class HPFSyntaxError(ReproError):
    """Raised by the mini-HPF lexer/parser on malformed source text.

    Carries the source line/column when available so tools can point at the
    offending token.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(f"{message}{location}")


class HPFSemanticError(ReproError):
    """Raised when a syntactically valid program violates HPF semantics.

    Examples: aligning an array with an undeclared template, distributing a
    template onto an undeclared processor arrangement, or referencing an
    undeclared array inside a ``FORALL``.
    """


class DistributionError(ReproError):
    """Raised for invalid data-distribution requests.

    Examples: a global index outside the template extent, a BLOCK distribution
    over zero processors, or asking for the local bounds of a rank outside the
    processor arrangement.
    """


class AlignmentError(ReproError):
    """Raised when an ALIGN directive cannot be applied to an array."""


class CompilationError(ReproError):
    """Raised when the out-of-core compiler cannot translate a program."""


class PlanVerificationError(CompilationError):
    """Raised when the static plan verifier rejects a compiled plan.

    Subclasses :class:`CompilationError` on purpose: a plan that fails
    verification is as unusable as one that failed to compile, and the plan
    optimizer's candidate evaluation already treats compilation failures as
    "reject this candidate" — verification failures flow through the same
    path.  Carries the frozen
    :class:`~repro.check.report.CheckReport` as ``report``.
    """

    def __init__(self, message: str, report: object | None = None):
        self.report = report
        super().__init__(message)


class CostModelError(ReproError):
    """Raised when the I/O cost model receives an inconsistent query."""


class MemoryAllocationError(ReproError):
    """Raised when the per-array memory allocator cannot satisfy a budget."""


class RuntimeExecutionError(ReproError):
    """Raised when executing a compiled node program fails."""


class DistributedExecutionError(RuntimeExecutionError):
    """Raised when the process-parallel EXECUTE backend cannot complete a run.

    Examples: a rank worker died (crashed or SIGKILLed) before reporting its
    results, a worker raised and shipped its traceback to the parent, or the
    workers' merged statistics failed a sanity check.  Carries ``rank`` (the
    first failing rank) and ``exitcode`` when known.
    """

    def __init__(self, message: str, rank: int | None = None,
                 exitcode: int | None = None):
        self.rank = rank
        self.exitcode = exitcode
        super().__init__(message)


class IOEngineError(ReproError):
    """Raised for invalid Local Array File operations (bad extents, closed files)."""


class TransientIOError(IOEngineError):
    """A retryable I/O failure (injected EIO/ENOSPC or a real transient error).

    The I/O engine retries these with bounded exponential backoff; only after
    the retry budget is exhausted does the failure surface as a plain
    :class:`IOEngineError`.
    """


class SlabCorruptionError(IOEngineError):
    """A slab read back from a Local Array File failed checksum verification.

    Carries the logical ``array`` name, the ``rank`` owning the file and the
    offending slab's extents so recovery code can regenerate the data from
    its producer.
    """

    def __init__(self, message: str, array: str = "", rank: int | None = None,
                 slab_key: tuple | None = None):
        self.array = array
        self.rank = rank
        self.slab_key = slab_key
        super().__init__(message)


class CollectiveError(ReproError):
    """Raised for malformed collective communication calls."""


class MachineConfigurationError(ReproError):
    """Raised for invalid machine-model parameters (negative bandwidth etc.)."""


class ExperimentError(ReproError):
    """Raised by the experiment harness for inconsistent sweep configurations."""


class WorkloadError(ReproError):
    """Raised by the workload registry and the Session API.

    Examples: registering two workloads under one name, asking for an
    unregistered workload, or compiling a :class:`~repro.api.WorkloadPoint`
    whose fields do not satisfy the workload's contract (missing slab
    specification, unknown program version, absent HPF source).
    """
