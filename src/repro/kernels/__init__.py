"""Out-of-core kernels.

The kernels are the *executable* counterparts of the node programs the
compiler generates: they drive the out-of-core runtime (Local Array Files,
slabs, global sums) exactly in the order the generated schedule prescribes,
performing the real arithmetic with NumPy so results can be verified against
dense references.

* :mod:`repro.kernels.gaxpy` — the paper's GAXPY matrix multiplication in its
  column-slab, row-slab and in-core forms, plus a dense reference.
* :mod:`repro.kernels.transpose` — out-of-core transpose (an additional
  workload exercising redistribution-style all-to-all communication).
* :mod:`repro.kernels.elementwise` — out-of-core elementwise array operations
  (the simplest class of data-parallel statement, no communication).
"""

from repro.kernels.gaxpy import (
    GaxpyInputs,
    GaxpyRunResult,
    generate_gaxpy_inputs,
    gaxpy_reference,
    run_gaxpy_column_slab,
    run_gaxpy_row_slab,
    run_gaxpy_incore,
    run_compiled_gaxpy,
)
from repro.kernels.elementwise import ElementwiseResult, run_elementwise
from repro.kernels.transpose import TransposeResult, run_transpose

__all__ = [
    "GaxpyInputs",
    "GaxpyRunResult",
    "generate_gaxpy_inputs",
    "gaxpy_reference",
    "run_gaxpy_column_slab",
    "run_gaxpy_row_slab",
    "run_gaxpy_incore",
    "run_compiled_gaxpy",
    "ElementwiseResult",
    "run_elementwise",
    "TransposeResult",
    "run_transpose",
]
