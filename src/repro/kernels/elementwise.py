"""Out-of-core elementwise operations.

The simplest class of data-parallel statement — ``c = f(a, b)`` applied
element by element — needs no communication at all when all operands share
the same distribution: every processor streams its local arrays slab by slab,
applies the operation in memory and writes the result slab.

The slab-loop engine lives in
:func:`repro.runtime.executor.run_elementwise_plan` (where the unified
lowering pipeline drives it from a compiled
:class:`~repro.core.ir.ElementwiseStatement`); this module keeps the
historical descriptor-based entry point as a thin wrapper.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional

import numpy as np

from repro.exceptions import RuntimeExecutionError
from repro.hpf.array_desc import ArrayDescriptor
from repro.runtime.executor import run_elementwise_plan
from repro.runtime.slab import SlabbingStrategy
from repro.runtime.vm import VirtualMachine

__all__ = ["ElementwiseResult", "run_elementwise"]


@dataclasses.dataclass
class ElementwiseResult:
    """Outcome of one out-of-core elementwise run."""

    simulated_seconds: float
    io_statistics: Dict[str, float]
    result: Optional[np.ndarray]
    verified: Optional[bool]


def run_elementwise(
    vm: VirtualMachine,
    descriptor: ArrayDescriptor,
    a_dense: Optional[np.ndarray],
    b_dense: Optional[np.ndarray],
    op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
    slab_elements: int = 4096,
    strategy: SlabbingStrategy | str = SlabbingStrategy.COLUMN,
    verify: bool = True,
) -> ElementwiseResult:
    """Compute ``c = op(a, b)`` out of core, slab by slab.

    ``descriptor`` describes all three arrays (they share shape, dtype and
    distribution); ``a_dense`` / ``b_dense`` are the dense inputs in
    ``EXECUTE`` mode (ignored in ``ESTIMATE`` mode).
    """
    if descriptor.ndim != 2:
        raise RuntimeExecutionError("run_elementwise handles two-dimensional arrays")

    def clone(name: str) -> ArrayDescriptor:
        return ArrayDescriptor(
            name, descriptor.shape, descriptor.alignment, dtype=descriptor.dtype,
            out_of_core=True,
        )

    result = run_elementwise_plan(
        vm,
        clone(f"{descriptor.name}_ew_a"),
        clone(f"{descriptor.name}_ew_b"),
        clone(f"{descriptor.name}_ew_c"),
        op=op,
        slab_elements=slab_elements,
        strategy=strategy,
        a_dense=a_dense,
        b_dense=b_dense,
        verify=verify,
    )
    return ElementwiseResult(
        simulated_seconds=result.simulated_seconds,
        io_statistics=result.io_statistics,
        result=result.result,
        verified=result.verified,
    )
