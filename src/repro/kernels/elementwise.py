"""Out-of-core elementwise operations.

The simplest class of data-parallel statement — ``c = f(a, b)`` applied
element by element — needs no communication at all when all operands share
the same distribution: every processor streams its local arrays slab by slab,
applies the operation in memory and writes the result slab.  The kernel
exists to exercise the runtime on the no-communication path and to provide a
baseline workload whose I/O cost is exactly one read per operand plus one
write, independent of the slabbing dimension.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional

import numpy as np

from repro.exceptions import RuntimeExecutionError
from repro.hpf.array_desc import ArrayDescriptor
from repro.runtime.slab import SlabbingStrategy, make_slabs
from repro.runtime.vm import VirtualMachine

__all__ = ["ElementwiseResult", "run_elementwise"]


@dataclasses.dataclass
class ElementwiseResult:
    """Outcome of one out-of-core elementwise run."""

    simulated_seconds: float
    io_statistics: Dict[str, float]
    result: Optional[np.ndarray]
    verified: Optional[bool]


def run_elementwise(
    vm: VirtualMachine,
    descriptor: ArrayDescriptor,
    a_dense: Optional[np.ndarray],
    b_dense: Optional[np.ndarray],
    op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
    slab_elements: int = 4096,
    strategy: SlabbingStrategy | str = SlabbingStrategy.COLUMN,
    verify: bool = True,
) -> ElementwiseResult:
    """Compute ``c = op(a, b)`` out of core, slab by slab.

    ``descriptor`` describes all three arrays (they share shape, dtype and
    distribution); ``a_dense`` / ``b_dense`` are the dense inputs in
    ``EXECUTE`` mode (ignored in ``ESTIMATE`` mode).
    """
    strategy = SlabbingStrategy.from_name(strategy)
    if descriptor.ndim != 2:
        raise RuntimeExecutionError("run_elementwise handles two-dimensional arrays")

    def clone(name: str) -> ArrayDescriptor:
        return ArrayDescriptor(
            name, descriptor.shape, descriptor.alignment, dtype=descriptor.dtype,
            out_of_core=True,
        )

    order = "F" if strategy is SlabbingStrategy.COLUMN else "C"
    ooc_a = vm.create_array(clone(f"{descriptor.name}_ew_a"), initial=a_dense, storage_order=order)
    ooc_b = vm.create_array(clone(f"{descriptor.name}_ew_b"), initial=b_dense, storage_order=order)
    zeros = np.zeros(descriptor.shape, dtype=descriptor.dtype) if vm.perform_io else None
    ooc_c = vm.create_array(clone(f"{descriptor.name}_ew_c"), initial=zeros, storage_order=order)

    flops_per_element = 1.0
    for rank in range(vm.nprocs):
        local_shape = descriptor.local_shape(rank)
        for slab in make_slabs(local_shape, strategy, slab_elements):
            a_block = ooc_a.local(rank).fetch_slab(slab)
            b_block = ooc_b.local(rank).fetch_slab(slab)
            vm.machine.charge_compute(rank, flops_per_element * slab.nelements)
            if vm.perform_io:
                ooc_c.local(rank).store_slab(slab, op(a_block, b_block).astype(descriptor.dtype))
            else:
                ooc_c.local(rank).store_slab(slab, None)

    result = vm.to_dense(ooc_c) if vm.perform_io else None
    verified: Optional[bool] = None
    if verify and result is not None and a_dense is not None and b_dense is not None:
        expected = op(np.asarray(a_dense, dtype=np.float64), np.asarray(b_dense, dtype=np.float64))
        verified = bool(np.allclose(result, expected, rtol=1e-4, atol=1e-4))
    return ElementwiseResult(
        simulated_seconds=vm.elapsed(),
        io_statistics=vm.io_statistics(),
        result=result,
        verified=verified,
    )
