"""Out-of-core matrix transpose.

Transpose is the canonical workload whose *communication*, not its
arithmetic, is shaped by the data distribution: with ``A`` column-block
distributed and ``B = A^T`` also column-block distributed, the columns of
``B`` owned by processor ``q`` are built from the rows of ``A`` with the same
global indices — which are spread over every processor's local array.  The
out-of-core version therefore streams slabs of ``A``, carves each slab into
the pieces destined for each processor, exchanges them (all-to-all), and
writes slabs of ``B``.

The kernel exercises exactly the runtime paths the GAXPY example does not:
point-to-point style exchange volume that scales with the array size, and
writes that land on a different processor's Local Array File than the reads
came from.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.exceptions import RuntimeExecutionError
from repro.hpf.array_desc import ArrayDescriptor
from repro.runtime.slab import Slab, column_slabs
from repro.runtime.vm import VirtualMachine

__all__ = ["TransposeResult", "run_transpose"]


@dataclasses.dataclass
class TransposeResult:
    """Outcome of one out-of-core transpose."""

    simulated_seconds: float
    io_statistics: Dict[str, float]
    result: Optional[np.ndarray]
    verified: Optional[bool]


def run_transpose(
    vm: VirtualMachine,
    descriptor: ArrayDescriptor,
    a_dense: Optional[np.ndarray],
    cols_per_slab: int = 8,
    verify: bool = True,
) -> TransposeResult:
    """Compute ``B = A^T`` out of core with ``A`` and ``B`` column-block distributed."""
    if descriptor.ndim != 2 or descriptor.shape[0] != descriptor.shape[1]:
        raise RuntimeExecutionError("run_transpose handles square two-dimensional arrays")
    n = descriptor.shape[0]
    nprocs = vm.nprocs
    itemsize = descriptor.itemsize

    def clone(name: str) -> ArrayDescriptor:
        return ArrayDescriptor(name, descriptor.shape, descriptor.alignment,
                               dtype=descriptor.dtype, out_of_core=True)

    source = vm.create_array(clone(f"{descriptor.name}_t_src"), initial=a_dense, storage_order="F")
    zeros = np.zeros(descriptor.shape, dtype=descriptor.dtype) if vm.perform_io else None
    target = vm.create_array(clone(f"{descriptor.name}_t_dst"), initial=zeros, storage_order="F")
    src_desc = source.descriptor
    dst_desc = target.descriptor

    # Each processor streams its local columns of A in slabs; the rows of each
    # slab destined for processor q form the exchange payload; q then writes the
    # transposed piece into its local columns of B.
    result_locals: Dict[int, np.ndarray] = {}
    if vm.perform_io:
        result_locals = {
            rank: np.zeros(dst_desc.local_shape(rank), dtype=dst_desc.dtype)
            for rank in range(nprocs)
        }

    for rank in range(nprocs):
        local_shape = src_desc.local_shape(rank)
        for slab in column_slabs(local_shape, cols_per_slab):
            block = source.local(rank).fetch_slab(slab)
            # exchange: every other processor receives the rows it owns as columns of B
            payload_bytes = slab.nbytes(itemsize) // max(nprocs, 1)
            vm.machine.charge_all_to_all(payload_bytes)
            if not vm.perform_io:
                continue
            global_cols = src_desc.local_index_ranges(rank)[1][slab.col_start:slab.col_stop]
            for dest in range(nprocs):
                # Columns of B owned by ``dest`` correspond to global rows of A
                # with the same indices; the slab contributes B[g, j] = A[j, g]
                # for every global column g in the slab and every j on ``dest``.
                dest_cols = dst_desc.local_index_ranges(dest)[1]
                piece = block[dest_cols, :]          # shape (|dest columns|, |slab columns|)
                for offset, gcol in enumerate(global_cols):
                    result_locals[dest][gcol, :] = piece[:, offset]

    # write the transposed local arrays slab by slab
    for rank in range(nprocs):
        local_shape = dst_desc.local_shape(rank)
        for slab in column_slabs(local_shape, cols_per_slab):
            if vm.perform_io:
                target.local(rank).store_slab(
                    slab, result_locals[rank][slab.row_slice, slab.col_slice]
                )
            else:
                target.local(rank).store_slab(slab, None)

    result = vm.to_dense(target) if vm.perform_io else None
    verified: Optional[bool] = None
    if verify and result is not None and a_dense is not None:
        verified = bool(np.allclose(result, np.asarray(a_dense).T, rtol=1e-5, atol=1e-5))
    return TransposeResult(
        simulated_seconds=vm.elapsed(),
        io_statistics=vm.io_statistics(),
        result=result,
        verified=verified,
    )
