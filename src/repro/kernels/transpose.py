"""Out-of-core matrix transpose.

Transpose is the canonical workload whose *communication*, not its
arithmetic, is shaped by the data distribution: with ``A`` column-block
distributed and ``B = A^T`` also column-block distributed, the columns of
``B`` owned by processor ``q`` are built from the rows of ``A`` with the same
global indices — which are spread over every processor's local array.  The
out-of-core version therefore streams slabs of ``A``, carves each slab into
the pieces destined for each processor, exchanges them (all-to-all), and
writes slabs of ``B``.

The slab-loop engine lives in :func:`repro.runtime.executor.run_transpose_plan`
(where the unified lowering pipeline drives it from a compiled
:class:`~repro.core.ir.TransposeStatement`); this module keeps the historical
descriptor-based entry point as a thin wrapper.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.exceptions import RuntimeExecutionError
from repro.hpf.array_desc import ArrayDescriptor
from repro.runtime.executor import run_transpose_plan
from repro.runtime.vm import VirtualMachine

__all__ = ["TransposeResult", "run_transpose"]


@dataclasses.dataclass
class TransposeResult:
    """Outcome of one out-of-core transpose."""

    simulated_seconds: float
    io_statistics: Dict[str, float]
    result: Optional[np.ndarray]
    verified: Optional[bool]


def run_transpose(
    vm: VirtualMachine,
    descriptor: ArrayDescriptor,
    a_dense: Optional[np.ndarray],
    cols_per_slab: int = 8,
    verify: bool = True,
) -> TransposeResult:
    """Compute ``B = A^T`` out of core with ``A`` and ``B`` column-block distributed."""
    if descriptor.ndim != 2 or descriptor.shape[0] != descriptor.shape[1]:
        raise RuntimeExecutionError("run_transpose handles square two-dimensional arrays")

    def clone(name: str) -> ArrayDescriptor:
        return ArrayDescriptor(name, descriptor.shape, descriptor.alignment,
                               dtype=descriptor.dtype, out_of_core=True)

    result = run_transpose_plan(
        vm,
        clone(f"{descriptor.name}_t_src"),
        clone(f"{descriptor.name}_t_dst"),
        cols_per_slab=cols_per_slab,
        a_dense=a_dense,
        verify=verify,
    )
    return TransposeResult(
        simulated_seconds=result.simulated_seconds,
        io_statistics=result.io_statistics,
        result=result.result,
        verified=result.verified,
    )
