"""Out-of-core GAXPY matrix multiplication (the paper's running example).

Three executable versions are provided, mirroring the paper:

* :func:`run_gaxpy_column_slab` — the straightforward extension of in-core
  compilation (Figure 9): column slabs of the streamed array are re-fetched
  for every result column.
* :func:`run_gaxpy_row_slab` — the reorganized version (Figure 12): row slabs
  of the streamed array are fetched once each and the loops are reordered
  around them.
* :func:`run_gaxpy_incore` — the in-core baseline: each local array is read
  from disk once and kept in memory.

All three operate on a :class:`~repro.runtime.vm.VirtualMachine`, perform the
real arithmetic with NumPy (in ``EXECUTE`` mode), charge every I/O transfer,
global sum and floating point operation to the machine model, and can verify
the product against a dense reference.

The functions are generic over the statement's array names — they take a
:class:`~repro.core.pipeline.CompiledProgram` and read the roles (streamed /
coefficient / result) from its analysis — so they serve as the execution
engine for any program of the GAXPY class, not just the literal ``a``, ``b``,
``c`` of the paper.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import RuntimeExecutionError
from repro.core.pipeline import CompiledProgram
from repro.runtime.collectives import global_sum
from repro.runtime.slab import Slab, SlabbingStrategy, column_slabs, row_slabs
from repro.runtime.vm import OutOfCoreArray, VirtualMachine

__all__ = [
    "GaxpyInputs",
    "GaxpyRunResult",
    "generate_gaxpy_inputs",
    "gaxpy_reference",
    "run_gaxpy_column_slab",
    "run_gaxpy_row_slab",
    "run_gaxpy_incore",
    "run_compiled_gaxpy",
]


# ---------------------------------------------------------------------------
# inputs and reference
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class GaxpyInputs:
    """Dense input operands for one GAXPY run."""

    streamed: np.ndarray     # the matrix whose columns are combined (A)
    coefficient: np.ndarray  # the matrix providing the combination weights (B)

    @property
    def n(self) -> int:
        return self.streamed.shape[0]


def generate_gaxpy_inputs(n: int, dtype="float32", seed: int = 1994) -> GaxpyInputs:
    """Generate reproducible dense operands of size ``n x n``."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)).astype(dtype)
    b = rng.standard_normal((n, n)).astype(dtype)
    return GaxpyInputs(streamed=a, coefficient=b)


def gaxpy_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense GAXPY product ``C = A B`` computed column by column (equation 1)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = a.shape[0]
    c = np.zeros((n, b.shape[1]), dtype=np.float64)
    for j in range(b.shape[1]):
        c[:, j] = a @ b[:, j]
    return c


# ---------------------------------------------------------------------------
# run results
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class GaxpyRunResult:
    """Outcome of one out-of-core GAXPY execution."""

    strategy: str
    simulated_seconds: float
    time_breakdown: Dict[str, float]
    io_statistics: Dict[str, float]
    result: Optional[np.ndarray] = None
    verified: Optional[bool] = None
    max_abs_error: Optional[float] = None

    def describe(self) -> str:
        lines = [
            f"gaxpy [{self.strategy}]: {self.simulated_seconds:.2f} simulated seconds",
            f"  io:      {self.time_breakdown.get('io', 0.0):.2f}s "
            f"({self.io_statistics.get('io_requests_per_proc', 0):.0f} requests/proc, "
            f"{self.io_statistics.get('bytes_read_per_proc', 0) / 1e6:.2f} MB read/proc)",
            f"  compute: {self.time_breakdown.get('compute', 0.0):.2f}s",
            f"  comm:    {self.time_breakdown.get('comm', 0.0):.2f}s",
        ]
        if self.verified is not None:
            lines.append(f"  verified against dense reference: {self.verified} "
                         f"(max |error| = {self.max_abs_error:.2e})")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------
def _uniform_local_shape(descriptor) -> Tuple[int, int]:
    shapes = {descriptor.local_shape(r) for r in range(descriptor.nprocs)}
    if len(shapes) != 1:
        raise RuntimeExecutionError(
            f"the executable kernels require identical local shapes on every processor; "
            f"array {descriptor.name!r} has {sorted(shapes)} "
            "(choose an extent divisible by the number of processors)"
        )
    return next(iter(shapes))


def _setup_arrays(
    vm: VirtualMachine,
    compiled: CompiledProgram,
    inputs: Optional[GaxpyInputs],
    result_order: str,
    streamed_order: str,
) -> Tuple[OutOfCoreArray, OutOfCoreArray, OutOfCoreArray]:
    analysis = compiled.analysis
    arrays = compiled.program.arrays
    s_desc = arrays[analysis.streamed]
    b_desc = arrays[analysis.coefficient]
    c_desc = arrays[analysis.result]
    for desc in (s_desc, b_desc, c_desc):
        _uniform_local_shape(desc)
    if b_desc.name == s_desc.name:
        raise RuntimeExecutionError(
            "the executable GAXPY kernels need distinct streamed and coefficient "
            f"arrays; {s_desc.name!r} plays both roles (single-operand statements "
            "are supported in ESTIMATE mode only)"
        )
    streamed_dense = inputs.streamed if inputs is not None else None
    coefficient_dense = inputs.coefficient if inputs is not None else None
    ooc_s = vm.create_array(s_desc, initial=streamed_dense, storage_order=streamed_order)
    ooc_b = vm.create_array(b_desc, initial=coefficient_dense, storage_order="F")
    ooc_c = vm.create_array(c_desc, initial=None if not vm.perform_io else
                            np.zeros(c_desc.shape, dtype=c_desc.dtype), storage_order=result_order)
    return ooc_s, ooc_b, ooc_c


def _finish(
    vm: VirtualMachine,
    compiled: CompiledProgram,
    strategy: str,
    ooc_c: OutOfCoreArray,
    inputs: Optional[GaxpyInputs],
    verify: bool,
) -> GaxpyRunResult:
    result_dense: Optional[np.ndarray] = None
    verified: Optional[bool] = None
    max_err: Optional[float] = None
    if vm.perform_io:
        result_dense = vm.to_dense(ooc_c)
        if verify and inputs is not None:
            reference = gaxpy_reference(inputs.streamed, inputs.coefficient)
            max_err = float(np.max(np.abs(result_dense.astype(np.float64) - reference)))
            scale = float(np.max(np.abs(reference))) or 1.0
            verified = bool(max_err <= 1e-3 * scale)
    return GaxpyRunResult(
        strategy=strategy,
        simulated_seconds=vm.elapsed(),
        time_breakdown=vm.time_breakdown(),
        io_statistics=vm.io_statistics(),
        result=result_dense,
        verified=verified,
        max_abs_error=max_err,
    )


def _charge_compute_all(vm: VirtualMachine, flops_per_proc: float) -> None:
    for rank in range(vm.nprocs):
        vm.machine.charge_compute(rank, flops_per_proc)


# ---------------------------------------------------------------------------
# column-slab version (Figure 9)
# ---------------------------------------------------------------------------
def run_gaxpy_column_slab(
    vm: VirtualMachine,
    compiled: CompiledProgram,
    inputs: Optional[GaxpyInputs] = None,
    verify: bool = True,
) -> GaxpyRunResult:
    """Execute the column-slab (naive) out-of-core GAXPY node program."""
    analysis = compiled.analysis
    plan = compiled.plan if compiled.plan.strategy is SlabbingStrategy.COLUMN else (
        compiled.decision.candidate(SlabbingStrategy.COLUMN) if compiled.decision else compiled.plan
    )
    s_entry = plan.entry(analysis.streamed)
    b_entry = plan.entry(analysis.coefficient)
    c_entry = plan.entry(analysis.result)

    ooc_s, ooc_b, ooc_c = _setup_arrays(vm, compiled, inputs, result_order="F", streamed_order="F")
    s_desc, c_desc = ooc_s.descriptor, ooc_c.descriptor
    s_shape = _uniform_local_shape(s_desc)
    b_shape = _uniform_local_shape(ooc_b.descriptor)
    c_shape = _uniform_local_shape(c_desc)
    nprocs = vm.nprocs
    n_rows = c_desc.shape[0]
    itemsize = c_desc.itemsize

    s_slabs = column_slabs(s_shape, s_entry.lines_per_slab)
    b_slabs = column_slabs(b_shape, b_entry.lines_per_slab)
    c_slabs = column_slabs(c_shape, c_entry.lines_per_slab)
    c_slab_of_col = {}
    for slab in c_slabs:
        for col in range(slab.col_start, slab.col_stop):
            c_slab_of_col[col] = slab

    perform = vm.perform_io
    c_buffers: Dict[int, np.ndarray] = {
        rank: np.zeros(c_shape, dtype=c_desc.dtype) for rank in range(nprocs)
    } if perform else {}

    # Fast path: the streamed array is read-only, so each slab is loaded from
    # disk once into a float64 staging buffer; every later re-stream of the
    # same slab is charged to the machine (identically to a real re-read) but
    # served from memory.  The arithmetic for all columns of a coefficient
    # slab is then one BLAS-3 GEMM per rank instead of ncols BLAS-2 matvecs.
    a64: Dict[int, np.ndarray] = {}
    products64: Dict[int, np.ndarray] = {}
    if perform:
        max_b_cols = max(slab.ncols for slab in b_slabs)
        a64 = {rank: np.empty(s_shape, dtype=np.float64) for rank in range(nprocs)}
        products64 = {
            rank: np.empty((n_rows, max_b_cols), dtype=np.float64) for rank in range(nprocs)
        }
    a_loaded: set = set()

    global_col = 0
    for b_slab in b_slabs:
        b_data = {rank: ooc_b.local(rank).fetch_slab(b_slab) for rank in range(nprocs)}
        b64 = {
            rank: b_data[rank].astype(np.float64) for rank in range(nprocs)
        } if perform else {}
        products: Optional[Dict[int, np.ndarray]] = None
        for m in range(b_slab.ncols):
            j = global_col
            global_col += 1
            for s_slab in s_slabs:
                for rank in range(nprocs):
                    if perform and (rank, s_slab.index) not in a_loaded:
                        a64[rank][:, s_slab.col_slice] = ooc_s.local(rank).fetch_slab(s_slab)
                        a_loaded.add((rank, s_slab.index))
                    else:
                        ooc_s.local(rank).charge_fetch(s_slab)
                    vm.machine.charge_compute(rank, 2.0 * s_slab.nelements)
            if perform and products is None:
                products = {
                    rank: np.matmul(a64[rank], b64[rank],
                                    out=products64[rank][:, : b_slab.ncols])
                    for rank in range(nprocs)
                }
            column = global_sum(
                vm.machine,
                {rank: products[rank][:, m] for rank in range(nprocs)} if perform else None,
                shape=(n_rows,),
                itemsize=itemsize,
            )
            if perform:
                owner = c_desc.owner_of_dim(1, j)
                local_j = c_desc.global_to_local((0, j))[1]
                c_buffers[owner][:, local_j] = column.astype(c_desc.dtype)
                c_slab = c_slab_of_col[local_j]
                if local_j == c_slab.col_stop - 1:
                    ooc_c.local(owner).store_slab(
                        c_slab, c_buffers[owner][:, c_slab.col_slice]
                    )
            else:
                owner = c_desc.owner_of_dim(1, j)
                local_j = c_desc.global_to_local((0, j))[1]
                c_slab = c_slab_of_col[local_j]
                if local_j == c_slab.col_stop - 1:
                    ooc_c.local(owner).store_slab(c_slab, None)

    return _finish(vm, compiled, "column-slab", ooc_c, inputs, verify)


# ---------------------------------------------------------------------------
# row-slab version (Figure 12)
# ---------------------------------------------------------------------------
def run_gaxpy_row_slab(
    vm: VirtualMachine,
    compiled: CompiledProgram,
    inputs: Optional[GaxpyInputs] = None,
    verify: bool = True,
) -> GaxpyRunResult:
    """Execute the reorganized (row-slab) out-of-core GAXPY node program."""
    analysis = compiled.analysis
    plan = compiled.plan if compiled.plan.strategy is SlabbingStrategy.ROW else (
        compiled.decision.candidate(SlabbingStrategy.ROW) if compiled.decision else compiled.plan
    )
    s_entry = plan.entry(analysis.streamed)
    b_entry = plan.entry(analysis.coefficient)

    ooc_s, ooc_b, ooc_c = _setup_arrays(vm, compiled, inputs, result_order="C", streamed_order="C")
    s_desc, c_desc = ooc_s.descriptor, ooc_c.descriptor
    s_shape = _uniform_local_shape(s_desc)
    b_shape = _uniform_local_shape(ooc_b.descriptor)
    c_shape = _uniform_local_shape(c_desc)
    nprocs = vm.nprocs
    itemsize = c_desc.itemsize

    s_slabs = row_slabs(s_shape, s_entry.lines_per_slab)
    b_slabs = column_slabs(b_shape, b_entry.lines_per_slab)

    perform = vm.perform_io

    # Preallocated per-rank GEMM output buffers, reused across every
    # (streamed slab, coefficient slab) pair.
    products64: Dict[int, np.ndarray] = {}
    if perform:
        max_s_rows = max(slab.nrows for slab in s_slabs)
        max_b_cols = max(slab.ncols for slab in b_slabs)
        products64 = {
            rank: np.empty((max_s_rows, max_b_cols), dtype=np.float64)
            for rank in range(nprocs)
        }

    for s_slab in s_slabs:
        a_data = {rank: ooc_s.local(rank).fetch_slab(s_slab) for rank in range(nprocs)}
        c_buffer: Dict[int, np.ndarray] = {}
        a64: Dict[int, np.ndarray] = {}
        if perform:
            # Hoisted conversions: one astype per fetched slab, not per column.
            a64 = {rank: a_data[rank].astype(np.float64) for rank in range(nprocs)}
            c_buffer = {
                rank: np.zeros((s_slab.nrows, c_shape[1]), dtype=c_desc.dtype)
                for rank in range(nprocs)
            }
        global_col = 0
        for b_slab in b_slabs:
            b_data = {rank: ooc_b.local(rank).fetch_slab(b_slab) for rank in range(nprocs)}
            products: Optional[Dict[int, np.ndarray]] = None
            if perform:
                # One BLAS-3 GEMM per rank covers every column of this
                # coefficient slab against the resident streamed slab.
                products = {
                    rank: np.matmul(a64[rank], b_data[rank].astype(np.float64),
                                    out=products64[rank][: s_slab.nrows, : b_slab.ncols])
                    for rank in range(nprocs)
                }
            for m in range(b_slab.ncols):
                j = global_col
                global_col += 1
                for rank in range(nprocs):
                    vm.machine.charge_compute(rank, 2.0 * s_slab.nelements)
                subcolumn = global_sum(
                    vm.machine,
                    {rank: products[rank][:, m] for rank in range(nprocs)} if perform else None,
                    shape=(s_slab.nrows,),
                    itemsize=itemsize,
                )
                owner = c_desc.owner_of_dim(1, j)
                local_j = c_desc.global_to_local((0, j))[1]
                if perform:
                    c_buffer[owner][:, local_j] = subcolumn.astype(c_desc.dtype)
        # the row slab of the result is complete on every owner: flush it
        c_row_slab = Slab(
            index=s_slab.index,
            row_start=s_slab.row_start,
            row_stop=s_slab.row_stop,
            col_start=0,
            col_stop=c_shape[1],
        )
        for rank in range(nprocs):
            ooc_c.local(rank).store_slab(c_row_slab, c_buffer.get(rank) if perform else None)

    return _finish(vm, compiled, "row-slab", ooc_c, inputs, verify)


# ---------------------------------------------------------------------------
# in-core baseline
# ---------------------------------------------------------------------------
def run_gaxpy_incore(
    vm: VirtualMachine,
    compiled: CompiledProgram,
    inputs: Optional[GaxpyInputs] = None,
    verify: bool = True,
) -> GaxpyRunResult:
    """Execute the in-core baseline: read every local array once, keep it in memory."""
    analysis = compiled.analysis
    ooc_s, ooc_b, ooc_c = _setup_arrays(vm, compiled, inputs, result_order="F", streamed_order="F")
    s_desc, c_desc = ooc_s.descriptor, ooc_c.descriptor
    c_shape = _uniform_local_shape(c_desc)
    nprocs = vm.nprocs
    n_rows = c_desc.shape[0]
    n_cols = c_desc.shape[1]
    itemsize = c_desc.itemsize
    perform = vm.perform_io

    a_data = {rank: ooc_s.local(rank).fetch_all() for rank in range(nprocs)}
    b_data = {rank: ooc_b.local(rank).fetch_all() for rank in range(nprocs)}
    c_local = {
        rank: np.zeros(c_shape, dtype=c_desc.dtype) for rank in range(nprocs)
    } if perform else {}

    # One whole-local-array GEMM per rank; the per-column loop below only
    # charges costs and runs the (per-column) global sums.
    products: Dict[int, np.ndarray] = {}
    if perform:
        products = {
            rank: a_data[rank].astype(np.float64) @ b_data[rank].astype(np.float64)
            for rank in range(nprocs)
        }

    flops_per_proc = analysis.flops_per_proc
    per_column_flops = flops_per_proc / max(n_cols, 1)
    for j in range(n_cols):
        contributions = None
        if perform:
            contributions = {rank: products[rank][:, j] for rank in range(nprocs)}
        for rank in range(nprocs):
            vm.machine.charge_compute(rank, per_column_flops)
        column = global_sum(vm.machine, contributions, shape=(n_rows,), itemsize=itemsize)
        if perform:
            owner = c_desc.owner_of_dim(1, j)
            local_j = c_desc.global_to_local((0, j))[1]
            c_local[owner][:, local_j] = column.astype(c_desc.dtype)

    for rank in range(nprocs):
        ooc_c.local(rank).store_all(c_local.get(rank) if perform else None)

    return _finish(vm, compiled, "in-core", ooc_c, inputs, verify)


# ---------------------------------------------------------------------------
# dispatcher
# ---------------------------------------------------------------------------
def run_compiled_gaxpy(
    vm: VirtualMachine,
    compiled: CompiledProgram,
    inputs: Optional[GaxpyInputs] = None,
    verify: bool = True,
) -> GaxpyRunResult:
    """Execute a compiled GAXPY-class program with the strategy the compiler chose."""
    if compiled.plan.strategy is SlabbingStrategy.ROW:
        return run_gaxpy_row_slab(vm, compiled, inputs, verify)
    return run_gaxpy_column_slab(vm, compiled, inputs, verify)
