"""Out-of-core GAXPY matrix multiplication (the paper's running example).

Since the unified-lowering refactor the execution engines live in
:mod:`repro.runtime.executor`, which drives *any* compiled reduction program
from its access plan.  This module keeps the historical GAXPY-flavoured entry
points as thin wrappers:

* :func:`run_gaxpy_column_slab` — the straightforward extension of in-core
  compilation (Figure 9): column slabs of the streamed array are re-fetched
  for every result column.
* :func:`run_gaxpy_row_slab` — the reorganized version (Figure 12): row slabs
  of the streamed array are fetched once each and the loops are reordered
  around them.
* :func:`run_gaxpy_incore` — the in-core baseline: each local array is read
  from disk once and kept in memory.

All three operate on a :class:`~repro.runtime.vm.VirtualMachine`, perform the
real arithmetic with NumPy (in ``EXECUTE`` mode), charge every I/O transfer,
global sum and floating point operation to the machine model, and can verify
the product against a dense reference.  They are generic over the
statement's array names — the engine reads the roles (streamed / coefficient
/ result) from the compiled analysis — so they serve any program of the
GAXPY class, not just the literal ``a``, ``b``, ``c`` of the paper.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

import numpy as np

from repro.core.pipeline import CompiledProgram
from repro.runtime.executor import (
    ExecutionResult,
    ReductionInputs,
    reduction_reference,
    run_reduction_column,
    run_reduction_incore,
    run_reduction_row,
    run_reduction_single_operand,
)
from repro.runtime.slab import SlabbingStrategy
from repro.runtime.vm import VirtualMachine

__all__ = [
    "GaxpyInputs",
    "GaxpyRunResult",
    "generate_gaxpy_inputs",
    "gaxpy_reference",
    "run_gaxpy_column_slab",
    "run_gaxpy_row_slab",
    "run_gaxpy_incore",
    "run_compiled_gaxpy",
]

#: Historical names for the generic reduction input container and reference.
GaxpyInputs = ReductionInputs
gaxpy_reference = reduction_reference


def generate_gaxpy_inputs(n: int, dtype="float32", seed: int = 1994) -> GaxpyInputs:
    """Generate reproducible dense operands of size ``n x n``."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n)).astype(dtype)
    b = rng.standard_normal((n, n)).astype(dtype)
    return GaxpyInputs(streamed=a, coefficient=b)


@dataclasses.dataclass
class GaxpyRunResult:
    """Outcome of one out-of-core GAXPY execution (legacy result shape)."""

    strategy: str
    simulated_seconds: float
    time_breakdown: Dict[str, float]
    io_statistics: Dict[str, float]
    result: Optional[np.ndarray] = None
    verified: Optional[bool] = None
    max_abs_error: Optional[float] = None

    def describe(self) -> str:
        lines = [
            f"gaxpy [{self.strategy}]: {self.simulated_seconds:.2f} simulated seconds",
            f"  io:      {self.time_breakdown.get('io', 0.0):.2f}s "
            f"({self.io_statistics.get('io_requests_per_proc', 0):.0f} requests/proc, "
            f"{self.io_statistics.get('bytes_read_per_proc', 0) / 1e6:.2f} MB read/proc)",
            f"  compute: {self.time_breakdown.get('compute', 0.0):.2f}s",
            f"  comm:    {self.time_breakdown.get('comm', 0.0):.2f}s",
        ]
        if self.verified is not None:
            lines.append(f"  verified against dense reference: {self.verified} "
                         f"(max |error| = {self.max_abs_error:.2e})")
        return "\n".join(lines)


def _legacy_result(result: ExecutionResult) -> GaxpyRunResult:
    return GaxpyRunResult(
        strategy=result.strategy,
        simulated_seconds=result.simulated_seconds,
        time_breakdown=result.time_breakdown,
        io_statistics=result.io_statistics,
        result=result.result,
        verified=result.verified,
        max_abs_error=result.max_abs_error,
    )


def run_gaxpy_column_slab(
    vm: VirtualMachine,
    compiled: CompiledProgram,
    inputs: Optional[GaxpyInputs] = None,
    verify: bool = True,
) -> GaxpyRunResult:
    """Execute the column-slab (naive) out-of-core GAXPY node program."""
    return _legacy_result(run_reduction_column(vm, compiled, inputs, verify))


def run_gaxpy_row_slab(
    vm: VirtualMachine,
    compiled: CompiledProgram,
    inputs: Optional[GaxpyInputs] = None,
    verify: bool = True,
) -> GaxpyRunResult:
    """Execute the reorganized (row-slab) out-of-core GAXPY node program."""
    return _legacy_result(run_reduction_row(vm, compiled, inputs, verify))


def run_gaxpy_incore(
    vm: VirtualMachine,
    compiled: CompiledProgram,
    inputs: Optional[GaxpyInputs] = None,
    verify: bool = True,
) -> GaxpyRunResult:
    """Execute the in-core baseline: read every local array once, keep it in memory."""
    return _legacy_result(run_reduction_incore(vm, compiled, inputs, verify))


def run_compiled_gaxpy(
    vm: VirtualMachine,
    compiled: CompiledProgram,
    inputs: Optional[GaxpyInputs] = None,
    verify: bool = True,
) -> GaxpyRunResult:
    """Execute a compiled GAXPY-class program with the strategy the compiler chose."""
    analysis = compiled.analysis
    if analysis.coefficient == analysis.streamed:
        return _legacy_result(run_reduction_single_operand(vm, compiled, inputs, verify))
    if compiled.plan.strategy is SlabbingStrategy.ROW:
        return _legacy_result(run_reduction_row(vm, compiled, inputs, verify))
    return _legacy_result(run_reduction_column(vm, compiled, inputs, verify))
