"""Abstract syntax tree of the mini-HPF surface language.

The AST mirrors the source constructs one to one; the front end
(:mod:`repro.hpf.frontend`) resolves names, applies the directives and lowers
the tree into the compiler IR (:mod:`repro.core.ir`).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

__all__ = [
    "ParameterDecl",
    "ArrayDecl",
    "ProcessorsDirective",
    "TemplateDirective",
    "DistributeDirective",
    "AlignDirective",
    "SubscriptExpr",
    "ArrayRefExpr",
    "ReductionAssignment",
    "ElementwiseAssignment",
    "TransposeAssignment",
    "LoopNode",
    "ProgramNode",
]


@dataclasses.dataclass(frozen=True)
class ParameterDecl:
    """``parameter (name = value, ...)`` — compile-time integer constants."""

    values: Dict[str, int]


@dataclasses.dataclass(frozen=True)
class ArrayDecl:
    """``real a(n, n)`` — an array declaration; extents are names or literals."""

    name: str
    type_name: str
    extents: Tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class ProcessorsDirective:
    """``!hpf$ processors Pr(nprocs)``"""

    name: str
    extents: Tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class TemplateDirective:
    """``!hpf$ template d(n)``"""

    name: str
    extents: Tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class DistributeDirective:
    """``!hpf$ distribute d(block) onto Pr``"""

    template: str
    patterns: Tuple[str, ...]
    processors: str


@dataclasses.dataclass(frozen=True)
class AlignDirective:
    """``!hpf$ align a(*, :) with d``"""

    array: str
    entries: Tuple[str, ...]
    template: str


@dataclasses.dataclass(frozen=True)
class SubscriptExpr:
    """One subscript: ``:``, an identifier, or an integer literal."""

    kind: str          # "full", "index", "constant"
    value: Optional[str] = None

    def describe(self) -> str:
        if self.kind == "full":
            return ":"
        return str(self.value)


@dataclasses.dataclass(frozen=True)
class ArrayRefExpr:
    """``a(:, k)`` — an array reference with symbolic subscripts."""

    array: str
    subscripts: Tuple[SubscriptExpr, ...]

    def describe(self) -> str:
        return f"{self.array}({', '.join(s.describe() for s in self.subscripts)})"


@dataclasses.dataclass(frozen=True)
class ReductionAssignment:
    """``c(:, j) = sum(a(:, k) * b(k, j))``"""

    target: ArrayRefExpr
    operands: Tuple[ArrayRefExpr, ...]
    reduction: str      # "sum", "max", ...

    def describe(self) -> str:
        rhs = " * ".join(op.describe() for op in self.operands)
        return f"{self.target.describe()} = {self.reduction}({rhs})"


@dataclasses.dataclass(frozen=True)
class ElementwiseAssignment:
    """``c(:, :) = add(a(:, :), b(:, :))`` — an elementwise assignment."""

    target: ArrayRefExpr
    operands: Tuple[ArrayRefExpr, ArrayRefExpr]
    op: str               # "add", "multiply", "subtract"

    def describe(self) -> str:
        lhs, rhs = self.operands
        return f"{self.target.describe()} = {self.op}({lhs.describe()}, {rhs.describe()})"


@dataclasses.dataclass(frozen=True)
class TransposeAssignment:
    """``b(:, :) = transpose(a(:, :))`` — a transpose assignment."""

    target: ArrayRefExpr
    operand: ArrayRefExpr

    def describe(self) -> str:
        return f"{self.target.describe()} = transpose({self.operand.describe()})"


@dataclasses.dataclass(frozen=True)
class LoopNode:
    """``do j = 1, n`` or ``forall (k = 1 : n)`` with a nested body."""

    kind: str            # "do" or "forall"
    index: str
    lower: str
    upper: str
    body: Tuple[object, ...]   # LoopNode or ReductionAssignment


@dataclasses.dataclass
class ProgramNode:
    """A whole parsed program."""

    name: str
    parameters: Dict[str, int]
    arrays: List[ArrayDecl]
    processors: List[ProcessorsDirective]
    templates: List[TemplateDirective]
    distributes: List[DistributeDirective]
    aligns: List[AlignDirective]
    body: Tuple[object, ...]
