"""Recursive-descent parser for the mini-HPF surface language.

Grammar (informally)::

    program     ::= "program" IDENT NL { declaration | directive }
                    { loop | statement } "end" ...
    declaration ::= "parameter" "(" IDENT "=" NUMBER { "," IDENT "=" NUMBER } ")" NL
                  | TYPE array_decl { "," array_decl } NL
    array_decl  ::= IDENT "(" extent { "," extent } ")"
    directive   ::= "!hpf$" ( processors | template | distribute | align ) NL
    loop        ::= "do" IDENT "=" extent "," extent NL { loop | statement } "end" "do" NL
                  | "forall" "(" IDENT "=" extent ":" extent ")" NL { loop | statement }
                    "end" "forall" NL
    statement   ::= arrayref "=" REDUCTION "(" arrayref { "*" arrayref } ")" NL
                  | arrayref "=" ELEMENTWISE "(" arrayref "," arrayref ")" NL
                  | arrayref "=" "transpose" "(" arrayref ")" NL
    arrayref    ::= IDENT "(" subscript { "," subscript } ")"
    subscript   ::= ":" | IDENT | NUMBER

The program body is a *sequence* of loop nests and assignments; the front
end checks the dataflow between them.  REDUCTION is sum/min/max/prod,
ELEMENTWISE is add/multiply/subtract.

Only the constructs the out-of-core compiler understands are accepted;
anything else raises :class:`~repro.exceptions.HPFSyntaxError` with the
offending line and column.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.exceptions import HPFSyntaxError
from repro.hpf.ast_nodes import (
    AlignDirective,
    ArrayDecl,
    ArrayRefExpr,
    DistributeDirective,
    ElementwiseAssignment,
    LoopNode,
    ProcessorsDirective,
    ProgramNode,
    ReductionAssignment,
    SubscriptExpr,
    TemplateDirective,
    TransposeAssignment,
)
from repro.hpf.lexer import DIRECTIVE, EOF, IDENT, NEWLINE, NUMBER, Token, tokenize

__all__ = ["parse_program"]

_TYPE_NAMES = {"real", "integer", "double", "logical", "complex"}
_REDUCTIONS = {"sum", "max", "min", "prod", "product"}
_ELEMENTWISE = {"add", "multiply", "subtract"}


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.peek()
        if token.kind is not EOF:
            self.pos += 1
        return token

    def error(self, message: str, token: Optional[Token] = None) -> HPFSyntaxError:
        token = token or self.peek()
        return HPFSyntaxError(message, token.line, token.column)

    def expect_ident(self, *names: str) -> Token:
        token = self.advance()
        if token.kind != IDENT or (names and token.text.lower() not in {n.lower() for n in names}):
            expected = " or ".join(names) if names else "an identifier"
            raise self.error(f"expected {expected}, found {token.text!r}", token)
        return token

    def expect_punct(self, text: str) -> Token:
        token = self.advance()
        if not token.is_punct(text):
            raise self.error(f"expected {text!r}, found {token.text!r}", token)
        return token

    def expect_newline(self) -> None:
        token = self.advance()
        if token.kind not in (NEWLINE, EOF):
            raise self.error(f"expected end of line, found {token.text!r}", token)

    def skip_newlines(self) -> None:
        while self.peek().kind == NEWLINE:
            self.advance()

    def at_ident(self, *names: str) -> bool:
        return self.peek().is_ident(*names)

    # -- extents / subscripts ---------------------------------------------------
    def parse_extent(self) -> str:
        token = self.advance()
        if token.kind in (IDENT, NUMBER):
            return token.text
        raise self.error(f"expected an extent (name or number), found {token.text!r}", token)

    def parse_name_list(self) -> Tuple[str, ...]:
        self.expect_punct("(")
        extents = [self.parse_extent()]
        while self.peek().is_punct(","):
            self.advance()
            extents.append(self.parse_extent())
        self.expect_punct(")")
        return tuple(extents)

    def parse_subscript(self) -> SubscriptExpr:
        token = self.advance()
        if token.is_punct(":"):
            return SubscriptExpr("full")
        if token.kind == IDENT:
            return SubscriptExpr("index", token.text)
        if token.kind == NUMBER:
            return SubscriptExpr("constant", token.text)
        raise self.error(f"expected a subscript, found {token.text!r}", token)

    def parse_array_ref(self) -> ArrayRefExpr:
        name = self.expect_ident()
        self.expect_punct("(")
        subscripts = [self.parse_subscript()]
        while self.peek().is_punct(","):
            self.advance()
            subscripts.append(self.parse_subscript())
        self.expect_punct(")")
        return ArrayRefExpr(name.text, tuple(subscripts))

    # -- declarations -----------------------------------------------------------
    def parse_parameter(self) -> dict:
        self.expect_ident("parameter")
        self.expect_punct("(")
        values = {}
        while True:
            name = self.expect_ident()
            self.expect_punct("=")
            number = self.advance()
            if number.kind != NUMBER:
                raise self.error(f"expected an integer value, found {number.text!r}", number)
            values[name.text] = int(number.text)
            if self.peek().is_punct(","):
                self.advance()
                continue
            break
        self.expect_punct(")")
        self.expect_newline()
        return values

    def parse_array_decls(self) -> List[ArrayDecl]:
        type_token = self.advance()
        type_name = type_token.text.lower()
        decls = []
        while True:
            name = self.expect_ident()
            extents = self.parse_name_list()
            decls.append(ArrayDecl(name.text, type_name, extents))
            if self.peek().is_punct(","):
                self.advance()
                continue
            break
        self.expect_newline()
        return decls

    # -- directives --------------------------------------------------------------
    def parse_directive(self, program: ProgramNode) -> None:
        self.advance()  # the DIRECTIVE marker
        keyword = self.expect_ident(
            "processors", "template", "distribute", "align"
        ).text.lower()
        if keyword == "processors":
            name = self.expect_ident()
            extents = self.parse_name_list()
            program.processors.append(ProcessorsDirective(name.text, extents))
        elif keyword == "template":
            name = self.expect_ident()
            extents = self.parse_name_list()
            program.templates.append(TemplateDirective(name.text, extents))
        elif keyword == "distribute":
            template = self.expect_ident()
            patterns = self.parse_name_list()
            self.expect_ident("onto", "on")
            processors = self.expect_ident()
            program.distributes.append(
                DistributeDirective(template.text, patterns, processors.text)
            )
        else:  # align
            array = self.expect_ident()
            self.expect_punct("(")
            entries = [self._parse_align_entry()]
            while self.peek().is_punct(","):
                self.advance()
                entries.append(self._parse_align_entry())
            self.expect_punct(")")
            self.expect_ident("with")
            template = self.expect_ident()
            program.aligns.append(AlignDirective(array.text, tuple(entries), template.text))
        self.expect_newline()

    def _parse_align_entry(self) -> str:
        token = self.advance()
        if token.is_punct("*"):
            return "*"
        if token.is_punct(":"):
            return ":"
        raise self.error(f"expected '*' or ':' in an align directive, found {token.text!r}", token)

    # -- loops and statements ------------------------------------------------------
    def parse_loop(self) -> LoopNode:
        if self.at_ident("do"):
            self.advance()
            index = self.expect_ident()
            self.expect_punct("=")
            lower = self.parse_extent()
            self.expect_punct(",")
            upper = self.parse_extent()
            self.expect_newline()
            body = self.parse_body(terminator="do")
            return LoopNode("do", index.text, lower, upper, tuple(body))
        if self.at_ident("forall"):
            self.advance()
            self.expect_punct("(")
            index = self.expect_ident()
            self.expect_punct("=")
            lower = self.parse_extent()
            self.expect_punct(":")
            upper = self.parse_extent()
            self.expect_punct(")")
            self.expect_newline()
            body = self.parse_body(terminator="forall")
            return LoopNode("forall", index.text, lower, upper, tuple(body))
        raise self.error("expected 'do' or 'forall'")

    def parse_statement(self):
        target = self.parse_array_ref()
        self.expect_punct("=")
        head = self.expect_ident()
        head_name = head.text.lower()
        if head_name in _REDUCTIONS:
            self.expect_punct("(")
            operands = [self.parse_array_ref()]
            while self.peek().is_punct("*"):
                self.advance()
                operands.append(self.parse_array_ref())
            self.expect_punct(")")
            self.expect_newline()
            reduction = "sum" if head_name == "sum" else head_name
            return ReductionAssignment(target, tuple(operands), reduction)
        if head_name in _ELEMENTWISE:
            self.expect_punct("(")
            lhs = self.parse_array_ref()
            self.expect_punct(",")
            rhs = self.parse_array_ref()
            self.expect_punct(")")
            self.expect_newline()
            return ElementwiseAssignment(target, (lhs, rhs), head_name)
        if head_name == "transpose":
            self.expect_punct("(")
            operand = self.parse_array_ref()
            self.expect_punct(")")
            self.expect_newline()
            return TransposeAssignment(target, operand)
        raise self.error(
            "only reduction (sum/min/max/prod), elementwise (add/multiply/subtract) "
            f"and transpose assignments are supported, found {head.text!r}", head,
        )

    def parse_body(self, terminator: str) -> List[object]:
        body: List[object] = []
        while True:
            self.skip_newlines()
            if self.at_ident("end"):
                self.advance()
                if self.peek().kind == IDENT:
                    closing = self.advance()
                    if closing.text.lower() not in (terminator, "program"):
                        raise self.error(
                            f"mismatched end: expected 'end {terminator}', found "
                            f"'end {closing.text}'", closing,
                        )
                self.expect_newline()
                return body
            if self.peek().kind == EOF:
                raise self.error(f"missing 'end {terminator}'")
            if self.at_ident("do", "forall"):
                body.append(self.parse_loop())
            else:
                body.append(self.parse_statement())

    # -- the program -----------------------------------------------------------------
    def parse_program(self) -> ProgramNode:
        self.skip_newlines()
        self.expect_ident("program")
        name = self.expect_ident()
        self.expect_newline()
        program = ProgramNode(
            name=name.text, parameters={}, arrays=[], processors=[], templates=[],
            distributes=[], aligns=[], body=(),
        )
        body: List[object] = []
        while True:
            self.skip_newlines()
            token = self.peek()
            if token.kind == EOF:
                break
            if token.kind == DIRECTIVE:
                self.parse_directive(program)
            elif token.is_ident("parameter"):
                program.parameters.update(self.parse_parameter())
            elif token.kind == IDENT and token.text.lower() in _TYPE_NAMES:
                program.arrays.extend(self.parse_array_decls())
            elif token.is_ident("end"):
                self.advance()
                if self.peek().kind == IDENT:
                    self.advance()
                self.skip_newlines()
                break
            elif token.is_ident("do", "forall"):
                body.append(self.parse_loop())
            elif token.kind == IDENT and self.peek(1).is_punct("("):
                # A bare assignment statement: programs are statement
                # *sequences*, each item a loop nest or an assignment.
                body.append(self.parse_statement())
            else:
                raise self.error(f"unexpected {token.text!r} at program level", token)
        program.body = tuple(body)
        return program


def parse_program(source: str) -> ProgramNode:
    """Parse mini-HPF source text into a :class:`~repro.hpf.ast_nodes.ProgramNode`."""
    return _Parser(tokenize(source)).parse_program()
