"""One-dimensional data distributions (the HPF ``DISTRIBUTE`` patterns).

A :class:`Distribution` maps the ``N`` indices of one template dimension onto
``P`` abstract processors along one dimension of a processor grid.  The three
HPF patterns are supported:

``BLOCK``
    Contiguous chunks of ``ceil(N / P)`` indices per processor (the pattern
    used throughout the paper: column-block for arrays ``A`` and ``C``,
    row-block for ``B``).

``CYCLIC``
    Round-robin assignment of single indices.

``CYCLIC(k)`` (block-cyclic)
    Round-robin assignment of blocks of ``k`` indices.

A fourth pseudo-distribution, ``ReplicatedDistribution``, models array
dimensions that are *not* distributed (every processor holds the full extent);
it is what an ``ALIGN (*, :)`` collapse produces for the collapsed dimension.

All distributions expose the same interface used by the compiler and runtime:

* :meth:`Distribution.owner` — which processor owns a global index,
* :meth:`Distribution.global_to_local` — translate a global index into the
  owner's local index,
* :meth:`Distribution.local_to_global` — inverse translation,
* :meth:`Distribution.local_size` — extent of the local array on a rank,
* :meth:`Distribution.local_indices` — the global indices owned by a rank.

Indices are zero-based throughout the library (the paper's Fortran examples
are one-based; the front end converts).
"""

from __future__ import annotations

import abc
import math
from typing import Iterator, Tuple

import numpy as np

from repro.exceptions import DistributionError

__all__ = [
    "Distribution",
    "BlockDistribution",
    "CyclicDistribution",
    "BlockCyclicDistribution",
    "ReplicatedDistribution",
    "make_distribution",
]


class Distribution(abc.ABC):
    """Abstract mapping of ``extent`` global indices onto ``nprocs`` processors."""

    def __init__(self, extent: int, nprocs: int):
        extent = int(extent)
        nprocs = int(nprocs)
        if extent < 0:
            raise DistributionError(f"extent must be non-negative, got {extent}")
        if nprocs < 1:
            raise DistributionError(f"number of processors must be positive, got {nprocs}")
        self.extent = extent
        self.nprocs = nprocs

    # -- required interface --------------------------------------------------
    @abc.abstractmethod
    def owner(self, gindex: int) -> int:
        """Return the processor coordinate owning global index ``gindex``."""

    @abc.abstractmethod
    def global_to_local(self, gindex: int) -> int:
        """Return the local index of ``gindex`` on its owner."""

    @abc.abstractmethod
    def local_to_global(self, proc: int, lindex: int) -> int:
        """Return the global index of local index ``lindex`` on processor ``proc``."""

    @abc.abstractmethod
    def local_size(self, proc: int) -> int:
        """Return the number of indices owned by processor ``proc``."""

    # -- shared helpers -------------------------------------------------------
    def _check_gindex(self, gindex: int) -> int:
        gindex = int(gindex)
        if not 0 <= gindex < self.extent:
            raise DistributionError(f"global index {gindex} outside extent {self.extent}")
        return gindex

    def _check_proc(self, proc: int) -> int:
        proc = int(proc)
        if not 0 <= proc < self.nprocs:
            raise DistributionError(f"processor {proc} outside arrangement of size {self.nprocs}")
        return proc

    def _check_lindex(self, proc: int, lindex: int) -> int:
        lindex = int(lindex)
        size = self.local_size(proc)
        if not 0 <= lindex < size:
            raise DistributionError(
                f"local index {lindex} outside local extent {size} on processor {proc}"
            )
        return lindex

    def local_indices(self, proc: int) -> np.ndarray:
        """Return the (sorted) global indices owned by processor ``proc``."""
        proc = self._check_proc(proc)
        return np.asarray(
            [self.local_to_global(proc, l) for l in range(self.local_size(proc))], dtype=np.int64
        )

    def is_distributed(self) -> bool:
        """True when different processors own different indices."""
        return True

    def max_local_size(self) -> int:
        """Largest local extent over all processors (used for buffer sizing)."""
        return max(self.local_size(p) for p in range(self.nprocs))

    def owners(self) -> np.ndarray:
        """Vector of owners for every global index (length ``extent``)."""
        return np.asarray([self.owner(g) for g in range(self.extent)], dtype=np.int64)

    def iter_owned(self) -> Iterator[Tuple[int, np.ndarray]]:
        """Yield ``(proc, global_indices)`` pairs for every processor."""
        for proc in range(self.nprocs):
            yield proc, self.local_indices(proc)

    # -- cosmetics ------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(extent={self.extent}, nprocs={self.nprocs})"

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.extent == other.extent  # type: ignore[attr-defined]
            and self.nprocs == other.nprocs  # type: ignore[attr-defined]
            and self._signature() == other._signature()  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.extent, self.nprocs, self._signature()))

    def _signature(self) -> Tuple:
        return ()


class BlockDistribution(Distribution):
    """HPF ``BLOCK`` distribution: contiguous chunks of ``ceil(N/P)`` indices.

    The paper's arrays are distributed this way: with ``N = 1024`` and
    ``P = 16`` every processor owns 64 consecutive columns (or rows).
    When ``P`` does not divide ``N`` the last processors own fewer (possibly
    zero) indices, exactly as HPF prescribes.
    """

    def __init__(self, extent: int, nprocs: int):
        super().__init__(extent, nprocs)
        # HPF BLOCK uses the ceiling block size.
        self.block = math.ceil(self.extent / self.nprocs) if self.extent else 0

    def owner(self, gindex: int) -> int:
        gindex = self._check_gindex(gindex)
        return gindex // self.block

    def global_to_local(self, gindex: int) -> int:
        gindex = self._check_gindex(gindex)
        return gindex % self.block

    def local_to_global(self, proc: int, lindex: int) -> int:
        proc = self._check_proc(proc)
        lindex = self._check_lindex(proc, lindex)
        return proc * self.block + lindex

    def local_size(self, proc: int) -> int:
        proc = self._check_proc(proc)
        if self.extent == 0:
            return 0
        start = proc * self.block
        if start >= self.extent:
            return 0
        return min(self.block, self.extent - start)

    def local_bounds(self, proc: int) -> Tuple[int, int]:
        """Return the half-open global interval ``[lo, hi)`` owned by ``proc``."""
        proc = self._check_proc(proc)
        start = min(proc * self.block, self.extent)
        stop = min(start + self.block, self.extent)
        return start, stop

    def _signature(self) -> Tuple:
        return (self.block,)


class CyclicDistribution(Distribution):
    """HPF ``CYCLIC`` distribution: index ``g`` lives on processor ``g mod P``."""

    def owner(self, gindex: int) -> int:
        gindex = self._check_gindex(gindex)
        return gindex % self.nprocs

    def global_to_local(self, gindex: int) -> int:
        gindex = self._check_gindex(gindex)
        return gindex // self.nprocs

    def local_to_global(self, proc: int, lindex: int) -> int:
        proc = self._check_proc(proc)
        lindex = self._check_lindex(proc, lindex)
        return lindex * self.nprocs + proc

    def local_size(self, proc: int) -> int:
        proc = self._check_proc(proc)
        if self.extent == 0:
            return 0
        full, rem = divmod(self.extent, self.nprocs)
        return full + (1 if proc < rem else 0)


class BlockCyclicDistribution(Distribution):
    """HPF ``CYCLIC(k)`` distribution: blocks of ``k`` indices dealt round-robin."""

    def __init__(self, extent: int, nprocs: int, block: int):
        super().__init__(extent, nprocs)
        block = int(block)
        if block < 1:
            raise DistributionError(f"CYCLIC block size must be positive, got {block}")
        self.block = block

    def owner(self, gindex: int) -> int:
        gindex = self._check_gindex(gindex)
        return (gindex // self.block) % self.nprocs

    def global_to_local(self, gindex: int) -> int:
        gindex = self._check_gindex(gindex)
        block_index = gindex // self.block
        local_block = block_index // self.nprocs
        return local_block * self.block + (gindex % self.block)

    def local_to_global(self, proc: int, lindex: int) -> int:
        proc = self._check_proc(proc)
        lindex = self._check_lindex(proc, lindex)
        local_block = lindex // self.block
        within = lindex % self.block
        global_block = local_block * self.nprocs + proc
        return global_block * self.block + within

    def local_size(self, proc: int) -> int:
        proc = self._check_proc(proc)
        if self.extent == 0:
            return 0
        nblocks = math.ceil(self.extent / self.block)
        full, rem = divmod(nblocks, self.nprocs)
        owned_blocks = full + (1 if proc < rem else 0)
        if owned_blocks == 0:
            return 0
        size = owned_blocks * self.block
        # The globally last block may be partial; it belongs to processor
        # (nblocks - 1) % nprocs.
        last_block_owner = (nblocks - 1) % self.nprocs
        if proc == last_block_owner:
            tail = self.extent - (nblocks - 1) * self.block
            size -= self.block - tail
        return size

    def _signature(self) -> Tuple:
        return (self.block,)


class ReplicatedDistribution(Distribution):
    """A non-distributed (collapsed / replicated) dimension.

    Every processor holds the entire extent locally.  ``owner`` is defined to
    be processor 0 purely so ownership queries have a deterministic answer;
    the compiler never generates communication for replicated dimensions.
    """

    def owner(self, gindex: int) -> int:
        self._check_gindex(gindex)
        return 0

    def global_to_local(self, gindex: int) -> int:
        return self._check_gindex(gindex)

    def local_to_global(self, proc: int, lindex: int) -> int:
        self._check_proc(proc)
        return self._check_lindex(proc, lindex)

    def local_size(self, proc: int) -> int:
        self._check_proc(proc)
        return self.extent

    def is_distributed(self) -> bool:
        return False


def make_distribution(kind: str, extent: int, nprocs: int, block: int | None = None) -> Distribution:
    """Factory used by the directive layer.

    Parameters
    ----------
    kind:
        One of ``"block"``, ``"cyclic"``, ``"cyclic(k)"`` (pass ``block``),
        ``"*"``/``"replicated"``/``"collapsed"``.
    extent / nprocs / block:
        Dimension extent, number of processors along the dimension, and block
        size for block-cyclic distributions.
    """
    normalized = kind.strip().lower()
    if normalized == "block":
        return BlockDistribution(extent, nprocs)
    if normalized == "cyclic":
        if block is not None and block > 1:
            return BlockCyclicDistribution(extent, nprocs, block)
        return CyclicDistribution(extent, nprocs)
    if normalized in {"*", "replicated", "collapsed", "none"}:
        return ReplicatedDistribution(extent, 1)
    raise DistributionError(f"unknown distribution kind {kind!r}")
