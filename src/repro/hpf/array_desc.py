"""Global (distributed) array descriptors.

An :class:`ArrayDescriptor` ties together the pieces declared by the HPF
directives — a shape, an element type, an alignment with a template, and the
template's distribution onto a processor grid — and answers the questions the
compiler and runtime need:

* which processor owns a global element (*owner computes* rule),
* how a global index translates into the owner's local index and back,
* the shape of the local array on every processor, and
* how a dense global array is scattered into local arrays / gathered back.

For the paper's program the descriptors of ``A`` and ``C`` report a
*column-block* distribution and the descriptor of ``B`` a *row-block*
distribution.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.exceptions import AlignmentError, DistributionError
from repro.hpf.align import Alignment
from repro.hpf.distribution import Distribution, ReplicatedDistribution
from repro.hpf.processors import ProcessorGrid
from repro.hpf.template import Template

__all__ = ["ArrayDescriptor"]


class ArrayDescriptor:
    """Descriptor of a globally addressed, possibly distributed array.

    Parameters
    ----------
    name:
        Array name as it appears in the source program.
    shape:
        Global shape.
    alignment:
        :class:`~repro.hpf.align.Alignment` with a template; its number of
        entries must match ``len(shape)``.
    dtype:
        NumPy element type (the paper uses ``real``, i.e. ``float32``; the
        library defaults to ``float64``).
    out_of_core:
        Whether the array is declared out-of-core (stored in Local Array Files
        and staged through slabs) or in-core (kept in simulated node memory).
    """

    def __init__(
        self,
        name: str,
        shape: Sequence[int],
        alignment: Alignment,
        dtype: np.dtype | str = np.float64,
        out_of_core: bool = True,
    ):
        self.name = str(name)
        self.shape: Tuple[int, ...] = tuple(int(s) for s in shape)
        if any(s < 0 for s in self.shape):
            raise DistributionError(f"array {name!r} has negative extent in {self.shape}")
        self.alignment = alignment
        self.template: Template = alignment.template
        self.grid: ProcessorGrid = self.template.grid
        self.dtype = np.dtype(dtype)
        self.out_of_core = bool(out_of_core)

        if alignment.ndim != len(self.shape):
            raise AlignmentError(
                f"array {name!r} has {len(self.shape)} dimensions but the alignment "
                f"has {alignment.ndim} entries"
            )

        # Resolve one Distribution per array dimension.
        self._dists: List[Distribution] = []
        for dim, spec in enumerate(alignment.specs):
            extent = self.shape[dim]
            if spec.collapsed or not self.template.is_distributed(spec.target):
                self._dists.append(ReplicatedDistribution(extent, 1))
                continue
            if spec.offset != 0:
                raise AlignmentError(
                    f"array {name!r}: shifted alignments onto distributed template "
                    "dimensions are not supported"
                )
            template_extent = self.template.shape[spec.target]
            if extent != template_extent:
                raise AlignmentError(
                    f"array {name!r} dimension {dim} has extent {extent} but aligns with "
                    f"template dimension {spec.target} of extent {template_extent}"
                )
            self._dists.append(self.template.distribution(spec.target))

    # ------------------------------------------------------------------
    # basic geometry
    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        total = 1
        for extent in self.shape:
            total *= extent
        return total

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    @property
    def nbytes(self) -> int:
        return self.size * self.itemsize

    @property
    def nprocs(self) -> int:
        """Total number of processors in the underlying grid."""
        return self.grid.size

    def dim_distribution(self, dim: int) -> Distribution:
        """Distribution governing array dimension ``dim``."""
        return self._dists[dim]

    def distributed_dims(self) -> Tuple[int, ...]:
        """Array dimensions that are actually spread across processors."""
        return tuple(i for i, d in enumerate(self._dists) if d.is_distributed())

    def is_distributed(self) -> bool:
        return bool(self.distributed_dims())

    # ------------------------------------------------------------------
    # ownership and index translation
    # ------------------------------------------------------------------
    def _grid_coords_of(self, index: Sequence[int]) -> Tuple[int, ...]:
        coords = [0] * self.grid.ndim
        for dim, spec in enumerate(self.alignment.specs):
            dist = self._dists[dim]
            if not dist.is_distributed():
                continue
            grid_dim = self.template.grid_dim(spec.target)  # type: ignore[arg-type]
            coords[grid_dim] = dist.owner(index[dim])
        return tuple(coords)

    def owner_of(self, index: Sequence[int]) -> int:
        """Linearised rank of the processor owning global element ``index``."""
        index = self._check_index(index)
        return self.grid.rank_of(self._grid_coords_of(index))

    def owner_of_dim(self, dim: int, gindex: int) -> int:
        """Rank owning any element whose ``dim`` coordinate is ``gindex``.

        Only meaningful when ``dim`` is the array's sole distributed dimension
        (as for every array in the paper's program); in that case the owner of
        an element is determined by that one coordinate.
        """
        distributed = self.distributed_dims()
        if distributed != (dim,):
            raise DistributionError(
                f"owner_of_dim({dim}) is only defined when dimension {dim} is the unique "
                f"distributed dimension; array {self.name!r} distributes {distributed}"
            )
        index = [0] * self.ndim
        index[dim] = gindex
        return self.owner_of(index)

    def global_to_local(self, index: Sequence[int]) -> Tuple[int, ...]:
        """Translate a global index into the owner's local index."""
        index = self._check_index(index)
        return tuple(self._dists[d].global_to_local(index[d]) for d in range(self.ndim))

    def local_to_global(self, rank: int, lindex: Sequence[int]) -> Tuple[int, ...]:
        """Translate processor ``rank``'s local index into a global index."""
        coords = self.grid.coordinates(rank)
        out = []
        for dim, spec in enumerate(self.alignment.specs):
            dist = self._dists[dim]
            if dist.is_distributed():
                grid_dim = self.template.grid_dim(spec.target)  # type: ignore[arg-type]
                out.append(dist.local_to_global(coords[grid_dim], lindex[dim]))
            else:
                out.append(dist.local_to_global(0, lindex[dim]))
        return tuple(out)

    def local_shape(self, rank: int) -> Tuple[int, ...]:
        """Shape of the local array on processor ``rank``."""
        coords = self.grid.coordinates(rank)
        shape = []
        for dim, spec in enumerate(self.alignment.specs):
            dist = self._dists[dim]
            if dist.is_distributed():
                grid_dim = self.template.grid_dim(spec.target)  # type: ignore[arg-type]
                shape.append(dist.local_size(coords[grid_dim]))
            else:
                shape.append(dist.local_size(0))
        return tuple(shape)

    def local_size(self, rank: int) -> int:
        total = 1
        for extent in self.local_shape(rank):
            total *= extent
        return total

    def local_nbytes(self, rank: int) -> int:
        return self.local_size(rank) * self.itemsize

    def max_local_nbytes(self) -> int:
        return max(self.local_nbytes(r) for r in range(self.nprocs))

    def local_index_ranges(self, rank: int) -> Tuple[np.ndarray, ...]:
        """Global indices owned by ``rank`` along each dimension."""
        coords = self.grid.coordinates(rank)
        ranges = []
        for dim, spec in enumerate(self.alignment.specs):
            dist = self._dists[dim]
            if dist.is_distributed():
                grid_dim = self.template.grid_dim(spec.target)  # type: ignore[arg-type]
                ranges.append(dist.local_indices(coords[grid_dim]))
            else:
                ranges.append(dist.local_indices(0))
        return tuple(ranges)

    def _check_index(self, index: Sequence[int]) -> Tuple[int, ...]:
        index = tuple(int(i) for i in index)
        if len(index) != self.ndim:
            raise DistributionError(
                f"index {index} has {len(index)} dimensions, array {self.name!r} has {self.ndim}"
            )
        for dim, (i, extent) in enumerate(zip(index, self.shape, strict=True)):
            if not 0 <= i < extent:
                raise DistributionError(
                    f"index {i} outside extent {extent} in dimension {dim} of array {self.name!r}"
                )
        return index

    # ------------------------------------------------------------------
    # scatter / gather of dense data
    # ------------------------------------------------------------------
    def scatter(self, global_array: np.ndarray) -> Dict[int, np.ndarray]:
        """Split a dense global array into per-processor local arrays.

        Works for any supported distribution by fancy-indexing with the owned
        global indices along each dimension.
        """
        global_array = np.asarray(global_array, dtype=self.dtype)
        if global_array.shape != self.shape:
            raise DistributionError(
                f"scatter: array shape {global_array.shape} does not match descriptor shape {self.shape}"
            )
        locals_: Dict[int, np.ndarray] = {}
        for rank in range(self.nprocs):
            ranges = self.local_index_ranges(rank)
            locals_[rank] = global_array[np.ix_(*ranges)].copy() if self.ndim else global_array.copy()
        return locals_

    def gather(self, local_arrays: Dict[int, np.ndarray]) -> np.ndarray:
        """Reassemble a dense global array from per-processor local arrays."""
        out = np.zeros(self.shape, dtype=self.dtype)
        for rank in range(self.nprocs):
            if rank not in local_arrays:
                raise DistributionError(f"gather: missing local array for rank {rank}")
            ranges = self.local_index_ranges(rank)
            expected = tuple(len(r) for r in ranges)
            local = np.asarray(local_arrays[rank], dtype=self.dtype)
            if local.shape != expected:
                raise DistributionError(
                    f"gather: rank {rank} local shape {local.shape} does not match expected {expected}"
                )
            out[np.ix_(*ranges)] = local
        return out

    # ------------------------------------------------------------------
    # descriptions
    # ------------------------------------------------------------------
    def distribution_name(self) -> str:
        """Human-readable name of the distribution pattern.

        For two-dimensional arrays the paper's vocabulary is used:
        ``column-block`` (dimension 1 distributed BLOCK), ``row-block``
        (dimension 0 distributed BLOCK), etc.
        """
        if self.ndim == 2:
            d0, d1 = self._dists
            if d0.is_distributed() and not d1.is_distributed():
                return f"row-{self._pattern_name(0)}"
            if d1.is_distributed() and not d0.is_distributed():
                return f"column-{self._pattern_name(1)}"
            if d0.is_distributed() and d1.is_distributed():
                return f"{self._pattern_name(0)} x {self._pattern_name(1)}"
            return "replicated"
        if not self.is_distributed():
            return "replicated"
        parts = []
        for dim in range(self.ndim):
            parts.append(self._pattern_name(dim) if self._dists[dim].is_distributed() else "*")
        return "(" + ", ".join(parts) + ")"

    def _pattern_name(self, dim: int) -> str:
        dist = self._dists[dim]
        name = type(dist).__name__
        if name == "BlockDistribution":
            return "block"
        if name == "CyclicDistribution":
            return "cyclic"
        if name == "BlockCyclicDistribution":
            return f"cyclic({dist.block})"  # type: ignore[attr-defined]
        return "replicated"

    def describe(self) -> str:
        return (
            f"{self.name}{list(self.shape)} dtype={self.dtype.name} "
            f"{self.distribution_name()} over {self.grid.size} processors "
            f"({'out-of-core' if self.out_of_core else 'in-core'})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArrayDescriptor({self.describe()})"
