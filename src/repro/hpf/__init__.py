"""Mini-HPF front end.

This subpackage implements the subset of High Performance Fortran needed to
express the programs compiled in the paper:

* ``PROCESSORS`` arrangements (:mod:`repro.hpf.processors`),
* ``TEMPLATE`` declarations (:mod:`repro.hpf.template`),
* ``DISTRIBUTE`` directives with BLOCK / CYCLIC / CYCLIC(k) patterns
  (:mod:`repro.hpf.distribution`),
* ``ALIGN`` directives mapping array dimensions onto template dimensions
  (:mod:`repro.hpf.align`),
* global array descriptors combining the above (:mod:`repro.hpf.array_desc`),
* a lexer/parser for a small HPF-like surface syntax
  (:mod:`repro.hpf.lexer`, :mod:`repro.hpf.parser`) producing an AST
  (:mod:`repro.hpf.ast_nodes`), and
* a front-end driver translating the AST into the compiler IR
  (:mod:`repro.hpf.frontend`).
"""

from repro.hpf.processors import ProcessorGrid
from repro.hpf.template import Template
from repro.hpf.distribution import (
    Distribution,
    BlockDistribution,
    CyclicDistribution,
    BlockCyclicDistribution,
    ReplicatedDistribution,
    make_distribution,
)
from repro.hpf.align import Alignment, AlignmentSpec
from repro.hpf.array_desc import ArrayDescriptor
from repro.hpf.parser import parse_program
from repro.hpf.frontend import compile_source, frontend_to_ir

__all__ = [
    "ProcessorGrid",
    "Template",
    "Distribution",
    "BlockDistribution",
    "CyclicDistribution",
    "BlockCyclicDistribution",
    "ReplicatedDistribution",
    "make_distribution",
    "Alignment",
    "AlignmentSpec",
    "ArrayDescriptor",
    "parse_program",
    "compile_source",
    "frontend_to_ir",
]
