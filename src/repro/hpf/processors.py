"""Processor arrangements (the HPF ``PROCESSORS`` directive).

A :class:`ProcessorGrid` names a logical, possibly multi-dimensional
arrangement of abstract processors.  Templates are distributed onto a
processor grid; at runtime each abstract processor is realised by one
simulated compute node of the machine model.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Sequence, Tuple

from repro.exceptions import DistributionError

__all__ = ["ProcessorGrid"]


@dataclasses.dataclass(frozen=True)
class ProcessorGrid:
    """A named logical arrangement of processors.

    Parameters
    ----------
    name:
        The HPF name of the arrangement (``Pr`` in the paper's example).
    shape:
        Extent along each dimension.  The paper uses one-dimensional
        arrangements (``processors Pr(nprocs)``); multi-dimensional grids are
        supported because BLOCK distributions of multi-dimensional templates
        need them.
    """

    name: str
    shape: Tuple[int, ...]

    def __init__(self, name: str, shape: Sequence[int] | int):
        if isinstance(shape, int):
            shape = (shape,)
        shape = tuple(int(s) for s in shape)
        if not shape:
            raise DistributionError("a processor grid needs at least one dimension")
        for extent in shape:
            if extent < 1:
                raise DistributionError(f"processor grid {name!r} has non-positive extent {extent}")
        object.__setattr__(self, "name", str(name))
        object.__setattr__(self, "shape", shape)

    # -- basic geometry -----------------------------------------------------
    @property
    def ndim(self) -> int:
        """Number of dimensions of the arrangement."""
        return len(self.shape)

    @property
    def size(self) -> int:
        """Total number of abstract processors."""
        total = 1
        for extent in self.shape:
            total *= extent
        return total

    def ranks(self) -> Iterator[int]:
        """Iterate over the linearised ranks ``0 .. size-1``."""
        return iter(range(self.size))

    # -- rank <-> coordinate conversion ------------------------------------
    def coordinates(self, rank: int) -> Tuple[int, ...]:
        """Return the grid coordinates of a linearised ``rank`` (row-major)."""
        if not 0 <= rank < self.size:
            raise DistributionError(f"rank {rank} outside processor grid of size {self.size}")
        coords = []
        remaining = rank
        for extent in reversed(self.shape):
            coords.append(remaining % extent)
            remaining //= extent
        return tuple(reversed(coords))

    def rank_of(self, coords: Sequence[int]) -> int:
        """Return the linearised rank of grid ``coords`` (row-major)."""
        coords = tuple(int(c) for c in coords)
        if len(coords) != self.ndim:
            raise DistributionError(
                f"coordinate tuple {coords} has {len(coords)} dimensions, grid has {self.ndim}"
            )
        rank = 0
        for coordinate, extent in zip(coords, self.shape, strict=True):
            if not 0 <= coordinate < extent:
                raise DistributionError(f"coordinate {coordinate} outside extent {extent}")
            rank = rank * extent + coordinate
        return rank

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dims = ", ".join(str(s) for s in self.shape)
        return f"PROCESSORS {self.name}({dims})"
