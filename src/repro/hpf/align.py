"""The HPF ``ALIGN`` directive.

An alignment maps each dimension of an array onto either a template dimension
(identity alignment) or collapses it (``*``), meaning every processor holds
the full extent of that dimension locally.

The paper's matrix-multiplication program uses::

    !hpf$ align (*, :) with d :: a, c, temp     ! columns distributed
    !hpf$ align (:, *) with d :: b              ! rows distributed

With a one-dimensional BLOCK-distributed template ``d(n)``, the first form
produces a *column-block* distribution (dimension 0 — the rows — is collapsed
and dimension 1 — the columns — follows ``d``); the second form produces a
*row-block* distribution.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

from repro.exceptions import AlignmentError
from repro.hpf.template import Template

__all__ = ["AlignmentSpec", "Alignment", "COLLAPSED"]

#: Sentinel used in alignment specifications for collapsed dimensions.
COLLAPSED = "*"


@dataclasses.dataclass(frozen=True)
class AlignmentSpec:
    """Alignment request for one array dimension.

    ``target`` is the zero-based template dimension the array dimension aligns
    with, or ``None`` for a collapsed dimension.  ``offset`` supports shifted
    alignments (``align a(i) with d(i + offset)``); the paper only needs
    ``offset = 0`` but the general form is implemented for completeness.
    """

    target: Optional[int]
    offset: int = 0

    @property
    def collapsed(self) -> bool:
        return self.target is None

    def describe(self) -> str:
        if self.collapsed:
            return COLLAPSED
        if self.offset:
            return f"dim{self.target}{self.offset:+d}"
        return f"dim{self.target}"


class Alignment:
    """A complete alignment of an array with a template.

    Parameters
    ----------
    template:
        The target template.
    specs:
        One entry per array dimension.  Accepted forms per entry:

        * ``"*"`` — collapsed dimension,
        * ``":"`` — align with the next unused template dimension in order
          (the HPF shorthand used in the paper),
        * an integer — align with that template dimension explicitly,
        * an :class:`AlignmentSpec` instance.
    """

    def __init__(self, template: Template, specs: Sequence[AlignmentSpec | str | int]):
        self.template = template
        resolved: list[AlignmentSpec] = []
        next_template_dim = 0
        for spec in specs:
            if isinstance(spec, AlignmentSpec):
                resolved.append(spec)
                if spec.target is not None:
                    next_template_dim = max(next_template_dim, spec.target + 1)
                continue
            if isinstance(spec, int):
                resolved.append(AlignmentSpec(target=spec))
                next_template_dim = max(next_template_dim, spec + 1)
                continue
            text = str(spec).strip()
            if text == COLLAPSED:
                resolved.append(AlignmentSpec(target=None))
            elif text == ":":
                if next_template_dim >= template.ndim:
                    raise AlignmentError(
                        "more ':' alignment entries than template dimensions "
                        f"(template {template.name!r} has {template.ndim})"
                    )
                resolved.append(AlignmentSpec(target=next_template_dim))
                next_template_dim += 1
            else:
                raise AlignmentError(f"unrecognized alignment entry {spec!r}")
        self.specs: Tuple[AlignmentSpec, ...] = tuple(resolved)

        used = [s.target for s in self.specs if s.target is not None]
        for target in used:
            if not 0 <= target < template.ndim:
                raise AlignmentError(
                    f"alignment targets template dimension {target} but template "
                    f"{template.name!r} has only {template.ndim} dimensions"
                )
        if len(set(used)) != len(used):
            raise AlignmentError("two array dimensions aligned with the same template dimension")

    # -- queries -------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.specs)

    def spec(self, dim: int) -> AlignmentSpec:
        return self.specs[dim]

    def collapsed_dims(self) -> Tuple[int, ...]:
        return tuple(i for i, s in enumerate(self.specs) if s.collapsed)

    def distributed_dims(self) -> Tuple[int, ...]:
        """Array dimensions aligned with a *distributed* template dimension."""
        out = []
        for i, s in enumerate(self.specs):
            if s.target is not None and self.template.is_distributed(s.target):
                out.append(i)
        return tuple(out)

    def describe(self) -> str:
        entries = ", ".join(s.describe() for s in self.specs)
        return f"ALIGN ({entries}) WITH {self.template.name}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Alignment({self.describe()!r})"
