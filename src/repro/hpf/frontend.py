"""Front-end driver: mini-HPF source text to compiler IR.

The front end resolves parameter names, applies the ``PROCESSORS``,
``TEMPLATE``, ``DISTRIBUTE`` and ``ALIGN`` directives to build array
descriptors, and lowers the program body — a *sequence* of constructs, each
either a perfect loop nest ending in a reduction assignment or a bare
elementwise / transpose assignment — into the (possibly multi-statement)
:class:`~repro.core.ir.ProgramIR` the out-of-core compiler consumes.  The IR
validates the inter-statement dataflow (operands must be program inputs or
prior results).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.exceptions import HPFSemanticError
from repro.hpf.align import Alignment
from repro.hpf.array_desc import ArrayDescriptor
from repro.hpf.ast_nodes import (
    ElementwiseAssignment,
    LoopNode,
    ProgramNode,
    ReductionAssignment,
    SubscriptExpr,
    TransposeAssignment,
)
from repro.hpf.parser import parse_program
from repro.hpf.processors import ProcessorGrid
from repro.hpf.template import DimDistributionSpec, Template

__all__ = ["frontend_to_ir", "compile_source"]


def _resolve_extent(value: str, parameters: Dict[str, int]) -> int:
    if value.isdigit():
        return int(value)
    if value in parameters:
        return parameters[value]
    raise HPFSemanticError(f"unknown extent {value!r} (not a literal or a parameter)")


def _lower_subscript(sub: SubscriptExpr, loop_indices: Tuple[str, ...]):
    from repro.core.ir import Constant, FullRange, LoopIndex

    if sub.kind == "full":
        return FullRange()
    if sub.kind == "constant":
        return Constant(int(sub.value) - 1)  # one-based source, zero-based IR
    if sub.value not in loop_indices:
        raise HPFSemanticError(f"subscript uses unknown loop index {sub.value!r}")
    return LoopIndex(sub.value)


def frontend_to_ir(program: ProgramNode, dtype_default: str = "float32", out_of_core: bool = True):
    """Lower a parsed mini-HPF program into the compiler IR."""
    from repro.core.ir import (
        ArrayRef,
        ElementwiseStatement,
        Loop,
        LoopKind,
        ProgramIR,
        ReductionStatement,
        Statement,
        TransposeStatement,
    )

    parameters = dict(program.parameters)

    # Processor arrangements.
    if not program.processors:
        raise HPFSemanticError("the program declares no PROCESSORS arrangement")
    grids: Dict[str, ProcessorGrid] = {}
    for directive in program.processors:
        shape = tuple(_resolve_extent(e, parameters) for e in directive.extents)
        grids[directive.name.lower()] = ProcessorGrid(directive.name, shape)

    # Templates + their distributions.
    template_extents: Dict[str, Tuple[int, ...]] = {
        t.name.lower(): tuple(_resolve_extent(e, parameters) for e in t.extents)
        for t in program.templates
    }
    templates: Dict[str, Template] = {}
    for directive in program.distributes:
        key = directive.template.lower()
        if key not in template_extents:
            raise HPFSemanticError(f"DISTRIBUTE names undeclared template {directive.template!r}")
        grid = grids.get(directive.processors.lower())
        if grid is None:
            raise HPFSemanticError(
                f"DISTRIBUTE names undeclared processor arrangement {directive.processors!r}"
            )
        specs = [DimDistributionSpec(pattern.lower()) for pattern in directive.patterns]
        templates[key] = Template(directive.template, template_extents[key], grid, specs)
    for name in template_extents:
        if name not in templates:
            raise HPFSemanticError(f"template {name!r} is never distributed")

    # Arrays: declaration + alignment.
    align_of = {a.array.lower(): a for a in program.aligns}
    dtype_map = {"real": dtype_default, "double": "float64", "integer": "int32"}
    descriptors: Dict[str, ArrayDescriptor] = {}
    for decl in program.arrays:
        key = decl.name.lower()
        if key not in align_of:
            raise HPFSemanticError(f"array {decl.name!r} has no ALIGN directive")
        align_directive = align_of[key]
        template = templates.get(align_directive.template.lower())
        if template is None:
            raise HPFSemanticError(
                f"ALIGN of {decl.name!r} names undeclared template {align_directive.template!r}"
            )
        shape = tuple(_resolve_extent(e, parameters) for e in decl.extents)
        alignment = Alignment(template, list(align_directive.entries))
        descriptors[decl.name] = ArrayDescriptor(
            decl.name, shape, alignment,
            dtype=dtype_map.get(decl.type_name, dtype_default),
            out_of_core=out_of_core,
        )

    # Program body: a sequence of constructs, each either a perfect loop nest
    # ending in one reduction assignment, or a bare (loop-free) elementwise /
    # transpose assignment.  Inter-statement dataflow is validated by the IR.
    def lower_ref(ref, loop_indices: Tuple[str, ...]) -> "ArrayRef":
        if ref.array not in descriptors:
            raise HPFSemanticError(f"statement references undeclared array {ref.array!r}")
        return ArrayRef(
            ref.array, [_lower_subscript(s, loop_indices) for s in ref.subscripts]
        )

    def lower_assignment(item, loop_indices: Tuple[str, ...]) -> "Statement":
        if isinstance(item, ReductionAssignment):
            raise HPFSemanticError(
                f"reduction assignment {item.describe()} must sit inside a FORALL "
                "loop nest"
            )
        if isinstance(item, ElementwiseAssignment):
            return ElementwiseStatement(
                result=lower_ref(item.target, loop_indices),
                operands=[lower_ref(op, loop_indices) for op in item.operands],
                op=item.op,
            )
        if isinstance(item, TransposeAssignment):
            return TransposeStatement(
                result=lower_ref(item.target, loop_indices),
                operand=lower_ref(item.operand, loop_indices),
            )
        raise HPFSemanticError(f"unsupported construct {type(item).__name__}")

    def lower_nest(node: LoopNode) -> Tuple[Tuple[Loop, ...], "Statement"]:
        loops: List[Loop] = []
        current: Tuple[object, ...] = (node,)
        while True:
            if len(current) != 1:
                raise HPFSemanticError(
                    "the compiler handles a perfect loop nest with a single statement; "
                    f"found {len(current)} constructs at one nesting level"
                )
            item = current[0]
            if isinstance(item, LoopNode):
                extent = (
                    _resolve_extent(item.upper, parameters)
                    - _resolve_extent(item.lower, parameters) + 1
                )
                kind = LoopKind.FORALL if item.kind == "forall" else LoopKind.SEQUENTIAL
                loops.append(Loop(item.index, extent, kind))
                current = item.body
                continue
            break
        if not isinstance(item, ReductionAssignment):
            raise HPFSemanticError(
                "a loop nest must end in a reduction assignment; found "
                f"{type(item).__name__}"
            )
        loop_indices = tuple(loop.index for loop in loops)
        forall_loops = [loop for loop in loops if loop.kind is LoopKind.FORALL]
        if not forall_loops:
            raise HPFSemanticError("the loop nest contains no FORALL loop to reduce over")
        reduce_index = forall_loops[-1].index
        statement = ReductionStatement(
            result=lower_ref(item.target, loop_indices),
            operands=[lower_ref(op, loop_indices) for op in item.operands],
            reduce_index=reduce_index,
            op=item.reduction,
        )
        return tuple(loops), statement

    if not program.body:
        raise HPFSemanticError("the program body contains no statement")
    statements: List[Statement] = []
    loop_nests: List[Tuple[Loop, ...]] = []
    for construct in program.body:
        if isinstance(construct, LoopNode):
            nest, statement = lower_nest(construct)
        else:
            nest, statement = (), lower_assignment(construct, ())
        loop_nests.append(nest)
        statements.append(statement)

    return ProgramIR(
        name=program.name,
        arrays=descriptors,
        statements=tuple(statements),
        loop_nests=tuple(loop_nests),
    )


def compile_source(source: str, params=None, **compile_kwargs):
    """Parse, lower and compile mini-HPF source text in one call.

    Keyword arguments are forwarded to :func:`repro.core.pipeline.compile_program`
    (one of ``memory_budget_bytes``, ``slab_ratio`` or ``slab_elements`` is
    required).
    """
    from repro.core.pipeline import compile_program

    ast = parse_program(source)
    program_ir = frontend_to_ir(ast)
    return compile_program(program_ir, params, **compile_kwargs)
