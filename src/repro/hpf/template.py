"""HPF ``TEMPLATE`` declarations and the ``DISTRIBUTE`` directive.

A template is an abstract index space that arrays are aligned with.  The
``DISTRIBUTE`` directive maps each template dimension either onto one
dimension of a processor grid (with a BLOCK / CYCLIC / CYCLIC(k) pattern) or
marks it as not distributed (``*``).

The paper's example uses the simplest possible case::

    !hpf$ template d(n)
    !hpf$ distribute d(block) on Pr

i.e. a one-dimensional template of extent ``n`` distributed BLOCK onto a
one-dimensional processor arrangement.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import DistributionError
from repro.hpf.distribution import Distribution, make_distribution
from repro.hpf.processors import ProcessorGrid

__all__ = ["DimDistributionSpec", "Template"]


@dataclasses.dataclass(frozen=True)
class DimDistributionSpec:
    """Distribution request for one template dimension.

    ``kind`` is ``"block"``, ``"cyclic"`` or ``"*"`` (not distributed);
    ``block`` is the block size for CYCLIC(k).
    """

    kind: str = "block"
    block: Optional[int] = None

    def is_distributed(self) -> bool:
        return self.kind.strip().lower() not in {"*", "replicated", "collapsed", "none"}

    def describe(self) -> str:
        if not self.is_distributed():
            return "*"
        if self.kind.lower() == "cyclic" and self.block and self.block > 1:
            return f"cyclic({self.block})"
        return self.kind.lower()


class Template:
    """An HPF template together with its distribution onto a processor grid.

    Parameters
    ----------
    name:
        Template name (``d`` in the paper).
    shape:
        Extent of each template dimension.
    grid:
        Processor arrangement the template is distributed onto.
    dist_specs:
        One :class:`DimDistributionSpec` per template dimension.  The number of
        *distributed* dimensions must equal the number of grid dimensions; they
        are matched in order (first distributed template dimension onto the
        first grid dimension, and so on), which is the HPF default.
    """

    def __init__(
        self,
        name: str,
        shape: Sequence[int] | int,
        grid: ProcessorGrid,
        dist_specs: Sequence[DimDistributionSpec | str] | None = None,
    ):
        if isinstance(shape, int):
            shape = (shape,)
        self.name = str(name)
        self.shape: Tuple[int, ...] = tuple(int(s) for s in shape)
        if any(s < 0 for s in self.shape):
            raise DistributionError(f"template {name!r} has negative extent in {self.shape}")
        self.grid = grid

        if dist_specs is None:
            # Default: distribute every dimension BLOCK, which requires the grid
            # to have the same rank as the template.
            dist_specs = [DimDistributionSpec("block") for _ in self.shape]
        normalized: List[DimDistributionSpec] = []
        for spec in dist_specs:
            if isinstance(spec, str):
                spec = DimDistributionSpec(spec)
            normalized.append(spec)
        if len(normalized) != len(self.shape):
            raise DistributionError(
                f"template {name!r} has {len(self.shape)} dimensions but "
                f"{len(normalized)} distribution specifications"
            )
        self.dist_specs: Tuple[DimDistributionSpec, ...] = tuple(normalized)

        distributed_dims = [i for i, s in enumerate(self.dist_specs) if s.is_distributed()]
        if len(distributed_dims) != grid.ndim:
            raise DistributionError(
                f"template {name!r} distributes {len(distributed_dims)} dimensions but the "
                f"processor grid {grid.name!r} has {grid.ndim} dimensions"
            )
        # template dim -> grid dim (None when not distributed)
        self._grid_dim_of: List[Optional[int]] = [None] * len(self.shape)
        for grid_dim, template_dim in enumerate(distributed_dims):
            self._grid_dim_of[template_dim] = grid_dim

        # Concrete per-dimension distributions.
        self._distributions: List[Distribution] = []
        for dim, spec in enumerate(self.dist_specs):
            if spec.is_distributed():
                nprocs = grid.shape[self._grid_dim_of[dim]]  # type: ignore[index]
                self._distributions.append(
                    make_distribution(spec.kind, self.shape[dim], nprocs, spec.block)
                )
            else:
                self._distributions.append(make_distribution("*", self.shape[dim], 1))

    # -- queries -------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    def distribution(self, dim: int) -> Distribution:
        """Concrete :class:`Distribution` of template dimension ``dim``."""
        return self._distributions[dim]

    def grid_dim(self, dim: int) -> Optional[int]:
        """Grid dimension that template dimension ``dim`` is distributed onto."""
        return self._grid_dim_of[dim]

    def is_distributed(self, dim: int) -> bool:
        return self.dist_specs[dim].is_distributed()

    def describe(self) -> str:
        dims = ", ".join(spec.describe() for spec in self.dist_specs)
        return f"DISTRIBUTE {self.name}({dims}) ONTO {self.grid.name}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Template({self.name!r}, shape={self.shape}, {self.describe()!r})"
