"""Lexer for the mini-HPF surface syntax.

The front end accepts a small, HPF-flavoured language sufficient to write
the programs the compiler handles — the paper's Figure 3 looks like this::

    program gaxpy
      parameter (n = 1024, nprocs = 16)
      real a(n, n), b(n, n), c(n, n)
    !hpf$ processors Pr(nprocs)
    !hpf$ template d(n)
    !hpf$ distribute d(block) onto Pr
    !hpf$ align a(*, :) with d
    !hpf$ align c(*, :) with d
    !hpf$ align b(:, *) with d
      do j = 1, n
        forall (k = 1 : n)
          c(:, j) = sum(a(:, k) * b(k, j))
        end forall
      end do
    end program

The lexer is line oriented: ``!hpf$`` prefixes mark directive lines (any
other ``!`` comment is skipped), and each line is broken into identifier,
number and punctuation tokens with positions for error reporting.
"""

from __future__ import annotations

import dataclasses
import re
from typing import List

from repro.exceptions import HPFSyntaxError

__all__ = ["Token", "tokenize"]

#: token kinds
IDENT = "IDENT"
NUMBER = "NUMBER"
PUNCT = "PUNCT"
DIRECTIVE = "DIRECTIVE"
NEWLINE = "NEWLINE"
EOF = "EOF"

_TOKEN_RE = re.compile(
    r"""
    (?P<NUMBER>\d+)
  | (?P<IDENT>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<PUNCT>\*|:|,|\(|\)|=|\+|-|/)
  | (?P<SKIP>[ \t]+)
  | (?P<BAD>.)
    """,
    re.VERBOSE,
)


@dataclasses.dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based line/column)."""

    kind: str
    text: str
    line: int
    column: int

    def is_ident(self, *names: str) -> bool:
        return self.kind == IDENT and (not names or self.text.lower() in {n.lower() for n in names})

    def is_punct(self, text: str) -> bool:
        return self.kind == PUNCT and self.text == text

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def _tokenize_line(line: str, lineno: int, tokens: List[Token]) -> None:
    for match in _TOKEN_RE.finditer(line):
        kind = match.lastgroup
        text = match.group()
        column = match.start() + 1
        if kind == "SKIP":
            continue
        if kind == "BAD":
            raise HPFSyntaxError(f"unexpected character {text!r}", lineno, column)
        tokens.append(Token(kind, text, lineno, column))


def tokenize(source: str) -> List[Token]:
    """Tokenize a mini-HPF program into a flat token list.

    Directive lines (``!hpf$ ...``) produce a :data:`DIRECTIVE` marker token
    followed by the directive's own tokens; ordinary comment lines are
    dropped; every line ends with a :data:`NEWLINE` token and the stream is
    terminated by :data:`EOF`.
    """
    tokens: List[Token] = []
    for lineno, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.rstrip()
        stripped = line.strip()
        if not stripped:
            continue
        lower = stripped.lower()
        if lower.startswith("!hpf$"):
            tokens.append(Token(DIRECTIVE, "!hpf$", lineno, line.lower().index("!hpf$") + 1))
            _tokenize_line(stripped[len("!hpf$"):], lineno, tokens)
        elif stripped.startswith("!") or stripped.lower().startswith("c "):
            continue  # plain comment
        else:
            # strip trailing comments
            if "!" in line:
                line = line[: line.index("!")]
                if not line.strip():
                    continue
            _tokenize_line(line, lineno, tokens)
        tokens.append(Token(NEWLINE, "\n", lineno, len(raw_line) + 1))
    last_line = tokens[-1].line + 1 if tokens else 1
    tokens.append(Token(EOF, "", last_line, 1))
    return tokens
