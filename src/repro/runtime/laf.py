"""Local Array Files (LAFs).

The data storage model of the paper stores the out-of-core local array of
each processor in a separate file owned by that processor: its Local Array
File.  The node program explicitly reads slabs from and writes slabs into the
LAF.

Here a LAF is a real file on the host filesystem holding the local array in
either column-major (``'F'``) or row-major (``'C'``) element order.  The
storage order is chosen by the compiler so that the slabs it plans to read
are contiguous on disk — this is the "reorganizing data storage on disks"
part of the paper's optimization.  Access goes through NumPy memory maps,
and every access reports how many contiguous file extents it touched so the
I/O engine can charge request counts faithfully.

Fast path: a LAF keeps one lazily opened, persistent ``np.memmap`` handle
and reuses it across slab accesses instead of paying a file open plus memmap
construction per access.  The handle is invalidated by :meth:`close` /
:meth:`delete` (and flushed there, so writes can skip per-access ``flush``
calls unless ``sync=True`` is requested).  A :class:`LafHandleCache` bounds
how many handles are simultaneously open so runs with hundreds of LAFs do
not exhaust file descriptors; evicted handles are flushed and transparently
reopened on the next access.  None of this changes what the simulated
machine is charged — accounting still goes through
:meth:`contiguous_chunks` in the I/O engine.
"""

from __future__ import annotations

import os
import uuid
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import IOEngineError
from repro.runtime.slab import Slab

__all__ = ["LafHandleCache", "LocalArrayFile"]


class LafHandleCache:
    """Bounded LRU registry of open :class:`LocalArrayFile` memmap handles.

    A virtual machine creates one cache and hands it to every LAF it owns;
    whenever a LAF opens or touches its persistent handle it is moved to the
    most-recently-used end, and the least-recently-used handle is released
    (flushed and dropped, the file kept intact) once more than ``capacity``
    handles are open.
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise IOEngineError(f"handle cache capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._open: "OrderedDict[int, LocalArrayFile]" = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._open)

    def touch(self, laf: "LocalArrayFile") -> None:
        """Record that ``laf``'s handle is open and was just used."""
        key = id(laf)
        if key in self._open:
            self._open.move_to_end(key)
            return
        self._open[key] = laf
        while len(self._open) > self.capacity:
            _, victim = self._open.popitem(last=False)
            self.evictions += 1
            victim._release_handle(unregister=False)

    def discard(self, laf: "LocalArrayFile") -> None:
        """Forget ``laf`` (its handle was released by the file itself)."""
        self._open.pop(id(laf), None)

    def release_all(self) -> None:
        """Flush and drop every open handle (files stay valid on disk)."""
        while self._open:
            _, victim = self._open.popitem(last=False)
            victim._release_handle(unregister=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LafHandleCache(open={len(self._open)}/{self.capacity}, evictions={self.evictions})"


class LocalArrayFile:
    """One processor's on-disk local array.

    Parameters
    ----------
    path:
        File path.  Parent directories are created on demand.
    shape:
        Local array shape ``(rows, cols)``.
    dtype:
        Element type.
    order:
        ``'F'`` (column-major, default — natural for the paper's
        column-oriented Fortran programs) or ``'C'`` (row-major).
    create:
        When true the file is created (zero-filled) if it does not exist.
    handle_cache:
        Optional :class:`LafHandleCache` bounding the number of
        simultaneously open memmap handles across many LAFs.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        shape: Tuple[int, int],
        dtype: np.dtype | str = np.float64,
        order: str = "F",
        create: bool = True,
        handle_cache: Optional[LafHandleCache] = None,
    ):
        self.path = Path(path)
        self.shape = (int(shape[0]), int(shape[1]))
        if self.shape[0] < 0 or self.shape[1] < 0:
            raise IOEngineError(f"negative local array shape {shape}")
        self.dtype = np.dtype(dtype)
        order = str(order).upper()
        if order not in ("F", "C"):
            raise IOEngineError(f"storage order must be 'F' or 'C', got {order!r}")
        self.order = order
        self._closed = False
        self._mm: Optional[np.memmap] = None
        self._handle_cache = handle_cache
        if create:
            self._ensure_file()

    # ------------------------------------------------------------------
    # file management
    # ------------------------------------------------------------------
    @property
    def nelements(self) -> int:
        return self.shape[0] * self.shape[1]

    @property
    def nbytes(self) -> int:
        return self.nelements * self.dtype.itemsize

    def _ensure_file(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not self.path.exists() or self.path.stat().st_size != self.nbytes:
            with open(self.path, "wb") as handle:
                if self.nbytes:
                    handle.truncate(self.nbytes)

    def _check_open(self) -> None:
        if self._closed:
            raise IOEngineError(f"local array file {self.path} is closed")

    def _handle(self) -> np.memmap:
        """The persistent read/write memmap, opened lazily and reused."""
        self._check_open()
        if self._mm is None:
            self._ensure_file()
            self._mm = np.memmap(
                self.path, dtype=self.dtype, mode="r+", shape=self.shape, order=self.order
            )
        if self._handle_cache is not None:
            self._handle_cache.touch(self)
        return self._mm

    def _release_handle(self, unregister: bool = True) -> None:
        """Flush and drop the persistent handle; the file stays valid."""
        mm, self._mm = self._mm, None
        if mm is not None:
            mm.flush()
            del mm
        if unregister and self._handle_cache is not None:
            self._handle_cache.discard(self)

    @property
    def handle_open(self) -> bool:
        """True while the persistent memmap handle is open."""
        return self._mm is not None

    def flush(self) -> None:
        """Force buffered writes of the open handle to disk."""
        if self._mm is not None:
            self._mm.flush()

    def exists(self) -> bool:
        return self.path.exists()

    def close(self) -> None:
        """Flush, drop the handle and mark the file closed; further access raises."""
        if not self._closed:
            self._release_handle()
        self._closed = True

    def delete(self) -> None:
        """Close and remove the backing file (ignored if already gone)."""
        self.close()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    # whole-array access
    # ------------------------------------------------------------------
    def write_full(self, data: np.ndarray, sync: bool = False) -> None:
        """Write the entire local array to the file.

        Writes land in the persistent memory map; ``sync=True`` forces them
        to disk immediately, otherwise they are flushed at the latest in
        :meth:`close` (or when the handle cache evicts the handle).
        """
        data = np.asarray(data, dtype=self.dtype)
        if data.shape != self.shape:
            raise IOEngineError(
                f"write_full: data shape {data.shape} does not match LAF shape {self.shape}"
            )
        if self.nelements == 0:
            self._check_open()
            return
        mm = self._handle()
        mm[...] = data
        if sync:
            mm.flush()

    def read_full(self) -> np.ndarray:
        """Read the entire local array from the file."""
        if self.nelements == 0:
            self._check_open()
            return np.zeros(self.shape, dtype=self.dtype)
        return np.array(self._handle())

    # ------------------------------------------------------------------
    # slab access
    # ------------------------------------------------------------------
    def _check_slab(self, slab: Slab) -> None:
        if slab.row_stop > self.shape[0] or slab.col_stop > self.shape[1]:
            raise IOEngineError(f"{slab.describe()} exceeds local shape {self.shape}")

    def read_slab(self, slab: Slab) -> np.ndarray:
        """Read one slab; returns a freshly allocated array of the slab shape."""
        self._check_slab(slab)
        if slab.nelements == 0:
            self._check_open()
            return np.zeros(slab.shape, dtype=self.dtype)
        return np.array(self._handle()[slab.row_slice, slab.col_slice])

    def write_slab(self, slab: Slab, data: np.ndarray, sync: bool = False) -> None:
        """Write one slab back to the file (flushed by ``close`` unless ``sync``)."""
        self._check_slab(slab)
        data = np.asarray(data, dtype=self.dtype)
        if data.shape != slab.shape:
            raise IOEngineError(
                f"write_slab: data shape {data.shape} does not match {slab.describe()}"
            )
        if slab.nelements == 0:
            self._check_open()
            return
        mm = self._handle()
        mm[slab.row_slice, slab.col_slice] = data
        if sync:
            mm.flush()

    def contiguous_chunks(self, slab: Slab) -> int:
        """Number of contiguous file extents the slab occupies in this file."""
        self._check_slab(slab)
        return slab.contiguous_chunks(self.shape, self.order)

    # ------------------------------------------------------------------
    @staticmethod
    def scratch_path(directory: str | os.PathLike, array_name: str, rank: int) -> Path:
        """Conventional LAF path for ``array_name`` on processor ``rank``."""
        unique = uuid.uuid4().hex[:8]
        return Path(directory) / f"laf_{array_name}_p{rank}_{unique}.dat"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LocalArrayFile({self.path.name}, shape={self.shape}, dtype={self.dtype.name}, "
            f"order={self.order!r})"
        )
