"""Local Array Files (LAFs).

The data storage model of the paper stores the out-of-core local array of
each processor in a separate file owned by that processor: its Local Array
File.  The node program explicitly reads slabs from and writes slabs into the
LAF.

Here a LAF is a real file on the host filesystem holding the local array in
either column-major (``'F'``) or row-major (``'C'``) element order.  The
storage order is chosen by the compiler so that the slabs it plans to read
are contiguous on disk — this is the "reorganizing data storage on disks"
part of the paper's optimization.  Access goes through NumPy memory maps,
and every access reports how many contiguous file extents it touched so the
I/O engine can charge request counts faithfully.
"""

from __future__ import annotations

import os
import uuid
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import IOEngineError
from repro.runtime.slab import Slab

__all__ = ["LocalArrayFile"]


class LocalArrayFile:
    """One processor's on-disk local array.

    Parameters
    ----------
    path:
        File path.  Parent directories are created on demand.
    shape:
        Local array shape ``(rows, cols)``.
    dtype:
        Element type.
    order:
        ``'F'`` (column-major, default — natural for the paper's
        column-oriented Fortran programs) or ``'C'`` (row-major).
    create:
        When true the file is created (zero-filled) if it does not exist.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        shape: Tuple[int, int],
        dtype: np.dtype | str = np.float64,
        order: str = "F",
        create: bool = True,
    ):
        self.path = Path(path)
        self.shape = (int(shape[0]), int(shape[1]))
        if self.shape[0] < 0 or self.shape[1] < 0:
            raise IOEngineError(f"negative local array shape {shape}")
        self.dtype = np.dtype(dtype)
        order = str(order).upper()
        if order not in ("F", "C"):
            raise IOEngineError(f"storage order must be 'F' or 'C', got {order!r}")
        self.order = order
        self._closed = False
        if create:
            self._ensure_file()

    # ------------------------------------------------------------------
    # file management
    # ------------------------------------------------------------------
    @property
    def nelements(self) -> int:
        return self.shape[0] * self.shape[1]

    @property
    def nbytes(self) -> int:
        return self.nelements * self.dtype.itemsize

    def _ensure_file(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not self.path.exists() or self.path.stat().st_size != self.nbytes:
            with open(self.path, "wb") as handle:
                if self.nbytes:
                    handle.truncate(self.nbytes)

    def _check_open(self) -> None:
        if self._closed:
            raise IOEngineError(f"local array file {self.path} is closed")

    def _memmap(self, mode: str) -> np.memmap:
        self._check_open()
        self._ensure_file()
        return np.memmap(self.path, dtype=self.dtype, mode=mode, shape=self.shape, order=self.order)

    def exists(self) -> bool:
        return self.path.exists()

    def close(self) -> None:
        """Mark the file closed; further access raises :class:`IOEngineError`."""
        self._closed = True

    def delete(self) -> None:
        """Close and remove the backing file (ignored if already gone)."""
        self.close()
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------
    # whole-array access
    # ------------------------------------------------------------------
    def write_full(self, data: np.ndarray) -> None:
        """Write the entire local array to the file."""
        data = np.asarray(data, dtype=self.dtype)
        if data.shape != self.shape:
            raise IOEngineError(
                f"write_full: data shape {data.shape} does not match LAF shape {self.shape}"
            )
        mm = self._memmap("r+")
        mm[...] = data
        mm.flush()
        del mm

    def read_full(self) -> np.ndarray:
        """Read the entire local array from the file."""
        mm = self._memmap("r")
        out = np.array(mm)
        del mm
        return out

    # ------------------------------------------------------------------
    # slab access
    # ------------------------------------------------------------------
    def _check_slab(self, slab: Slab) -> None:
        if slab.row_stop > self.shape[0] or slab.col_stop > self.shape[1]:
            raise IOEngineError(f"{slab.describe()} exceeds local shape {self.shape}")

    def read_slab(self, slab: Slab) -> np.ndarray:
        """Read one slab; returns a freshly allocated array of the slab shape."""
        self._check_slab(slab)
        if slab.nelements == 0:
            return np.zeros(slab.shape, dtype=self.dtype)
        mm = self._memmap("r")
        out = np.array(mm[slab.row_slice, slab.col_slice])
        del mm
        return out

    def write_slab(self, slab: Slab, data: np.ndarray) -> None:
        """Write one slab back to the file."""
        self._check_slab(slab)
        data = np.asarray(data, dtype=self.dtype)
        if data.shape != slab.shape:
            raise IOEngineError(
                f"write_slab: data shape {data.shape} does not match {slab.describe()}"
            )
        if slab.nelements == 0:
            return
        mm = self._memmap("r+")
        mm[slab.row_slice, slab.col_slice] = data
        mm.flush()
        del mm

    def contiguous_chunks(self, slab: Slab) -> int:
        """Number of contiguous file extents the slab occupies in this file."""
        self._check_slab(slab)
        return slab.contiguous_chunks(self.shape, self.order)

    # ------------------------------------------------------------------
    @staticmethod
    def scratch_path(directory: str | os.PathLike, array_name: str, rank: int) -> Path:
        """Conventional LAF path for ``array_name`` on processor ``rank``."""
        unique = uuid.uuid4().hex[:8]
        return Path(directory) / f"laf_{array_name}_p{rank}_{unique}.dat"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LocalArrayFile({self.path.name}, shape={self.shape}, dtype={self.dtype.name}, "
            f"order={self.order!r})"
        )
