"""Local Array Files (LAFs).

The data storage model of the paper stores the out-of-core local array of
each processor in a separate file owned by that processor: its Local Array
File.  The node program explicitly reads slabs from and writes slabs into the
LAF.

Here a LAF is a real file on the host filesystem holding the local array in
either column-major (``'F'``) or row-major (``'C'``) element order.  The
storage order is chosen by the compiler so that the slabs it plans to read
are contiguous on disk — this is the "reorganizing data storage on disks"
part of the paper's optimization.  Access goes through NumPy memory maps,
and every access reports how many contiguous file extents it touched so the
I/O engine can charge request counts faithfully.

Fast path: a LAF keeps one lazily opened, persistent ``np.memmap`` handle
and reuses it across slab accesses instead of paying a file open plus memmap
construction per access.  The handle is invalidated by :meth:`close` /
:meth:`delete` (and flushed there, so writes can skip per-access ``flush``
calls unless ``sync=True`` is requested).  A :class:`LafHandleCache` bounds
how many handles are simultaneously open so runs with hundreds of LAFs do
not exhaust file descriptors; evicted handles are flushed and transparently
reopened on the next access.  None of this changes what the simulated
machine is charged — accounting still goes through
:meth:`contiguous_chunks` in the I/O engine.
"""

from __future__ import annotations

import os
import uuid
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import IOEngineError, SlabCorruptionError
from repro.resilience.checksums import SlabManifest, slab_checksum
from repro.runtime.slab import Slab

__all__ = ["LafHandleCache", "LocalArrayFile"]


class LafHandleCache:
    """Bounded LRU registry of open :class:`LocalArrayFile` memmap handles.

    A virtual machine creates one cache and hands it to every LAF it owns;
    whenever a LAF opens or touches its persistent handle it is moved to the
    most-recently-used end, and the least-recently-used handle is released
    (flushed and dropped, the file kept intact) once more than ``capacity``
    handles are open.
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise IOEngineError(f"handle cache capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._open: "OrderedDict[int, LocalArrayFile]" = OrderedDict()
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._open)

    def touch(self, laf: "LocalArrayFile") -> None:
        """Record that ``laf``'s handle is open and was just used."""
        key = id(laf)
        if key in self._open:
            self._open.move_to_end(key)
            return
        self._open[key] = laf
        while len(self._open) > self.capacity:
            _, victim = self._open.popitem(last=False)
            self.evictions += 1
            victim._release_handle(unregister=False)

    def discard(self, laf: "LocalArrayFile") -> None:
        """Forget ``laf`` (its handle was released by the file itself)."""
        self._open.pop(id(laf), None)

    def release_all(self) -> None:
        """Flush and drop every open handle (files stay valid on disk)."""
        while self._open:
            _, victim = self._open.popitem(last=False)
            victim._release_handle(unregister=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LafHandleCache(open={len(self._open)}/{self.capacity}, evictions={self.evictions})"


class LocalArrayFile:
    """One processor's on-disk local array.

    Parameters
    ----------
    path:
        File path.  Parent directories are created on demand.
    shape:
        Local array shape ``(rows, cols)``.
    dtype:
        Element type.
    order:
        ``'F'`` (column-major, default — natural for the paper's
        column-oriented Fortran programs) or ``'C'`` (row-major).
    create:
        When true the file is created (zero-filled) if it does not exist.
    handle_cache:
        Optional :class:`LafHandleCache` bounding the number of
        simultaneously open memmap handles across many LAFs.
    array_name / rank:
        Logical identity of this file (which array, which processor) used in
        error messages and :class:`~repro.exceptions.SlabCorruptionError`.
    manifest:
        Optional :class:`~repro.resilience.checksums.SlabManifest`.  When
        present, slab writes record checksums, exact-slab reads verify them,
        and :meth:`verify_checksums` can audit the whole file.  Host-side
        only; the simulated machine never sees it.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        shape: Tuple[int, int],
        dtype: np.dtype | str = np.float64,
        order: str = "F",
        create: bool = True,
        handle_cache: Optional[LafHandleCache] = None,
        *,
        array_name: str = "",
        rank: Optional[int] = None,
        manifest: Optional[SlabManifest] = None,
    ):
        self.path = Path(path)
        self.shape = (int(shape[0]), int(shape[1]))
        if self.shape[0] < 0 or self.shape[1] < 0:
            raise IOEngineError(f"negative local array shape {shape}")
        self.dtype = np.dtype(dtype)
        order = str(order).upper()
        if order not in ("F", "C"):
            raise IOEngineError(f"storage order must be 'F' or 'C', got {order!r}")
        self.order = order
        self.array_name = str(array_name)
        self.rank = rank
        self.manifest = manifest
        self._closed = False
        self._mm: Optional[np.memmap] = None
        self._handle_cache = handle_cache
        if create:
            self._ensure_file()

    @property
    def label(self) -> str:
        """Human-readable identity: ``array[pRANK]`` or the file name."""
        if self.array_name:
            return (f"{self.array_name}[p{self.rank}]" if self.rank is not None
                    else self.array_name)
        return self.path.name

    # ------------------------------------------------------------------
    # file management
    # ------------------------------------------------------------------
    @property
    def nelements(self) -> int:
        return self.shape[0] * self.shape[1]

    @property
    def nbytes(self) -> int:
        return self.nelements * self.dtype.itemsize

    def _ensure_file(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not self.path.exists() or self.path.stat().st_size != self.nbytes:
            with open(self.path, "wb") as handle:
                if self.nbytes:
                    handle.truncate(self.nbytes)

    def _check_open(self) -> None:
        if self._closed:
            raise IOEngineError(f"local array file {self.path} is closed")

    def _handle(self) -> np.memmap:
        """The persistent read/write memmap, opened lazily and reused."""
        self._check_open()
        if self._mm is None:
            self._ensure_file()
            self._mm = np.memmap(
                self.path, dtype=self.dtype, mode="r+", shape=self.shape, order=self.order
            )
        if self._handle_cache is not None:
            self._handle_cache.touch(self)
        return self._mm

    def _release_handle(self, unregister: bool = True) -> None:
        """Flush and drop the persistent handle; the file stays valid.

        A failed flush surfaces as :class:`IOEngineError` naming the array
        and rank — never silently, and never with the stale handle kept
        around (the handle is dropped either way).
        """
        mm, self._mm = self._mm, None
        try:
            if mm is not None:
                try:
                    mm.flush()
                except OSError as exc:
                    raise IOEngineError(
                        f"flushing local array file {self.label} ({self.path}) failed: {exc}"
                    ) from exc
                finally:
                    del mm
        finally:
            if unregister and self._handle_cache is not None:
                self._handle_cache.discard(self)

    @property
    def handle_open(self) -> bool:
        """True while the persistent memmap handle is open."""
        return self._mm is not None

    def flush(self) -> None:
        """Force buffered writes of the open handle to disk."""
        if self._mm is not None:
            self._mm.flush()

    def exists(self) -> bool:
        return self.path.exists()

    def close(self) -> None:
        """Flush, drop the handle and mark the file closed; further access raises.

        Idempotent: the first call does the work (and surfaces any pending
        flush failure as :class:`IOEngineError`); repeat calls are no-ops and
        never re-raise.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._release_handle()
        finally:
            try:
                self.sync_manifest()
            except OSError:  # manifest persistence is best-effort on close
                pass

    def delete(self) -> None:
        """Close and remove the backing file and its checksum sidecar.

        Idempotent (a missing file is not an error) and never *masks* a
        pending flush failure: the files are removed either way, then the
        flush error — which names the array and rank — is re-raised.
        """
        flush_error: Optional[IOEngineError] = None
        # Persisting the manifest sidecar just to unlink it would be wasted
        # work: detach it before close so sync_manifest has nothing to save.
        manifest, self.manifest = self.manifest, None
        try:
            self.close()
        except IOEngineError as exc:
            flush_error = exc
        try:
            self.path.unlink()
        except FileNotFoundError:
            pass
        if manifest is not None and manifest.path is not None:
            try:
                manifest.path.unlink()
            except FileNotFoundError:
                pass
        if flush_error is not None:
            raise flush_error

    def sync_manifest(self) -> None:
        """Persist the checksum manifest sidecar if it has unsaved entries."""
        if self.manifest is not None and self.manifest.path is not None and self.manifest.dirty:
            self.manifest.save()

    # ------------------------------------------------------------------
    # whole-array access
    # ------------------------------------------------------------------
    def write_full(self, data: np.ndarray, sync: bool = False) -> None:
        """Write the entire local array to the file.

        Writes land in the persistent memory map; ``sync=True`` forces them
        to disk immediately, otherwise they are flushed at the latest in
        :meth:`close` (or when the handle cache evicts the handle).
        """
        data = np.asarray(data, dtype=self.dtype)
        if data.shape != self.shape:
            raise IOEngineError(
                f"write_full: data shape {data.shape} does not match LAF shape {self.shape}"
            )
        if self.manifest is not None:
            self.manifest.record_full(self.shape, slab_checksum(data))
        if self.nelements == 0:
            self._check_open()
            return
        mm = self._handle()
        mm[...] = data
        if sync:
            mm.flush()

    def read_full(self) -> np.ndarray:
        """Read the entire local array from the file (verifying every checksum)."""
        if self.nelements == 0:
            self._check_open()
            return np.zeros(self.shape, dtype=self.dtype)
        data = np.array(self._handle())
        self._verify_against_manifest(data)
        return data

    # ------------------------------------------------------------------
    # slab access
    # ------------------------------------------------------------------
    def _check_slab(self, slab: Slab) -> None:
        if slab.row_stop > self.shape[0] or slab.col_stop > self.shape[1]:
            raise IOEngineError(f"{slab.describe()} exceeds local shape {self.shape}")

    def read_slab(self, slab: Slab) -> np.ndarray:
        """Read one slab; returns a freshly allocated array of the slab shape.

        When this file carries a checksum manifest and the exact slab was
        recorded by an earlier write, the bytes read back are verified and a
        mismatch raises :class:`~repro.exceptions.SlabCorruptionError`.
        """
        self._check_slab(slab)
        if slab.nelements == 0:
            self._check_open()
            return np.zeros(slab.shape, dtype=self.dtype)
        data = np.array(self._handle()[slab.row_slice, slab.col_slice])
        if self.manifest is not None and self.manifest.verifiable:
            key = self._slab_key(slab)
            if self.manifest.matches(key, data) is False:
                raise self._corruption_error(key)
        return data

    def write_slab(self, slab: Slab, data: np.ndarray, sync: bool = False) -> None:
        """Write one slab back to the file (flushed by ``close`` unless ``sync``)."""
        self._check_slab(slab)
        data = np.asarray(data, dtype=self.dtype)
        if data.shape != slab.shape:
            raise IOEngineError(
                f"write_slab: data shape {data.shape} does not match {slab.describe()}"
            )
        if self.manifest is not None:
            self.manifest.record(self._slab_key(slab), slab_checksum(data))
        if slab.nelements == 0:
            self._check_open()
            return
        mm = self._handle()
        mm[slab.row_slice, slab.col_slice] = data
        if sync:
            mm.flush()

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    @staticmethod
    def _slab_key(slab: Slab) -> Tuple[int, int, int, int]:
        return (int(slab.row_start), int(slab.row_stop),
                int(slab.col_start), int(slab.col_stop))

    def _corruption_error(self, key: Tuple[int, int, int, int]) -> SlabCorruptionError:
        return SlabCorruptionError(
            f"checksum mismatch reading rows [{key[0]}, {key[1]}) x "
            f"cols [{key[2]}, {key[3]}) of local array file {self.label} ({self.path})",
            array=self.array_name or self.path.name,
            rank=self.rank,
            slab_key=key,
        )

    def _verify_against_manifest(self, full: np.ndarray) -> None:
        """Check every recorded slab checksum against in-memory full data."""
        if self.manifest is None or not self.manifest.verifiable:
            return
        for key, expected in self.manifest.entries.items():
            piece = full[key[0]:key[1], key[2]:key[3]]
            if slab_checksum(piece) != expected:
                raise self._corruption_error(key)

    def verify_checksums(self) -> int:
        """Re-read the file and verify every recorded slab checksum.

        Returns the number of slabs verified; raises
        :class:`~repro.exceptions.SlabCorruptionError` on the first mismatch.
        Used at statement boundaries and when validating a checkpoint.
        """
        if self.manifest is None or not self.manifest.verifiable or not self.manifest.entries:
            return 0
        if self.nelements:
            self._verify_against_manifest(np.asarray(self._handle()))
        return len(self.manifest.entries)

    def _inject_corruption(self, slab: Slab, mode: str) -> None:
        """Damage the just-written slab on disk (fault injection only).

        ``"torn"`` loses the trailing half of the slab's rows (single-row
        slabs lose trailing columns); ``"bitflip"`` flips every bit of one
        byte inside the slab.  The checksum manifest is deliberately left
        describing the intended data, so the damage is detectable.
        """
        if slab.nelements == 0:
            return
        if mode == "torn":
            mm = self._handle()
            rows = slab.row_stop - slab.row_start
            if rows > 1:
                mm[slab.row_start + rows // 2:slab.row_stop, slab.col_slice] = 0
            else:
                cols = slab.col_stop - slab.col_start
                mm[slab.row_slice, slab.col_start + cols // 2:slab.col_stop] = 0
        elif mode == "bitflip":
            # A separate byte-level MAP_SHARED view of the same file is
            # coherent with the typed handle; XOR one byte of the slab's
            # first element.
            if self.order == "F":
                element = slab.col_start * self.shape[0] + slab.row_start
            else:
                element = slab.row_start * self.shape[1] + slab.col_start
            raw = np.memmap(self.path, dtype=np.uint8, mode="r+")
            try:
                raw[element * self.dtype.itemsize] ^= 0xFF
            finally:
                del raw
        else:  # pragma: no cover - injector only emits the two modes above
            raise IOEngineError(f"unknown corruption mode {mode!r}")

    def contiguous_chunks(self, slab: Slab) -> int:
        """Number of contiguous file extents the slab occupies in this file."""
        self._check_slab(slab)
        return slab.contiguous_chunks(self.shape, self.order)

    # ------------------------------------------------------------------
    @staticmethod
    def scratch_path(directory: str | os.PathLike, array_name: str, rank: int) -> Path:
        """Conventional LAF path for ``array_name`` on processor ``rank``."""
        unique = uuid.uuid4().hex[:8]
        return Path(directory) / f"laf_{array_name}_p{rank}_{unique}.dat"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LocalArrayFile({self.path.name}, shape={self.shape}, dtype={self.dtype.name}, "
            f"order={self.order!r})"
        )
