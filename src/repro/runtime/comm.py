"""Collective-communication backends for the virtual machine.

The engines in :mod:`repro.runtime.executor` reach every collective through
``vm.comm`` so one code path serves two execution styles:

* :class:`SimulatedComm` — all P simulated processors live in this process.
  Data movement is NumPy arithmetic and every processor's clocks/counters are
  charged together, by delegating to the module-level collectives of
  :mod:`repro.runtime.collectives` and the machine's ``charge_*`` methods.
  This is the historical behaviour, bit-for-bit.
* ``ProcessComm`` (:mod:`repro.runtime.distributed.proc_comm`) — one rank per
  OS process.  Bytes really move between workers over a pipe/shared-memory
  transport, and each worker charges only its *own* rank's clock and counter
  row with exactly the arithmetic the simulator applies to that row, so the
  merged per-processor statistics stay bit-identical to a simulated run.

A backend is bound to a machine once (``bind``), then serves ``global_sum`` /
``broadcast`` / ``charge_all_to_all`` / ``scatter`` for the life of the VM.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.machine.cluster import Machine
from repro.runtime import collectives

__all__ = ["CommBackend", "SimulatedComm"]


class CommBackend:
    """Interface the executor engines program against (see module docstring)."""

    #: the single rank this backend serves, or ``None`` for all ranks.
    rank: Optional[int] = None

    def bind(self, machine: Machine) -> None:
        raise NotImplementedError

    def global_sum(
        self,
        contributions: Optional[Dict[int, np.ndarray]],
        *,
        shape: Sequence[int],
        itemsize: int,
    ) -> Optional[np.ndarray]:
        raise NotImplementedError

    def broadcast(
        self,
        root: int,
        data: Optional[np.ndarray],
        *,
        shape: Sequence[int],
        itemsize: int,
    ) -> Optional[np.ndarray]:
        raise NotImplementedError

    def charge_all_to_all(self, nbytes_per_pair: int) -> float:
        raise NotImplementedError

    def scatter(
        self, root: int, parts: Optional[Dict[int, np.ndarray]]
    ) -> Dict[int, np.ndarray]:
        raise NotImplementedError


class SimulatedComm(CommBackend):
    """All ranks in-process: delegate to the historical simulated collectives."""

    def __init__(self) -> None:
        self.machine: Optional[Machine] = None

    def bind(self, machine: Machine) -> None:
        self.machine = machine

    def global_sum(self, contributions, *, shape, itemsize):
        return collectives.global_sum(
            self.machine, contributions, shape=shape, itemsize=itemsize
        )

    def broadcast(self, root, data, *, shape, itemsize):
        # The simulated broadcast does not care which rank owns the payload:
        # every processor is charged and the data is already local.
        return collectives.broadcast(self.machine, data, shape=shape, itemsize=itemsize)

    def charge_all_to_all(self, nbytes_per_pair: int) -> float:
        return self.machine.charge_all_to_all(nbytes_per_pair)

    def scatter(self, root, parts):
        # Every destination's piece is already in this process.
        return dict(parts or {})
