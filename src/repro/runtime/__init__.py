"""PASSION-style out-of-core runtime.

This subpackage implements the data storage model of the paper (Section 2.3):

* each processor's out-of-core local array (OCLA) lives in its own
  **Local Array File** (:mod:`repro.runtime.laf`),
* the portion currently being computed on is staged through an
  **In-core Local Array** (:mod:`repro.runtime.icla`),
* computation is strip-mined into **slabs** (:mod:`repro.runtime.slab`),
* slab reads/writes go through an accounting **I/O engine**
  (:mod:`repro.runtime.io_engine`),
* inter-processor data movement uses simulated **collectives**
  (:mod:`repro.runtime.collectives`),
* initial **redistribution** reorganizes data arriving on disk in a layout
  that does not match the program's distribution
  (:mod:`repro.runtime.redistribution`), and
* a **virtual machine** (:mod:`repro.runtime.vm`) ties the pieces to the
  machine cost model, with an **executor** (:mod:`repro.runtime.executor`)
  that runs compiled node programs.
"""

from repro.runtime.slab import Slab, SlabbingStrategy, column_slabs, row_slabs, make_slabs
from repro.runtime.laf import LafHandleCache, LocalArrayFile
from repro.runtime.icla import InCoreLocalArray
from repro.runtime.ocla import OutOfCoreLocalArray
from repro.runtime.io_engine import IOEngine, IOAccounting
from repro.runtime.collectives import global_sum, broadcast, point_to_point
from repro.runtime.prefetch import NoPrefetch, OverlapPrefetch, PrefetchPolicy
from repro.runtime.vm import VirtualMachine, OutOfCoreArray
from repro.runtime.executor import (
    ExecutionResult,
    NodeProgramExecutor,
    ProgramExecutor,
    ReductionInputs,
    program_reference,
    reduction_reference,
)

__all__ = [
    "Slab",
    "SlabbingStrategy",
    "column_slabs",
    "row_slabs",
    "make_slabs",
    "LafHandleCache",
    "LocalArrayFile",
    "InCoreLocalArray",
    "OutOfCoreLocalArray",
    "IOEngine",
    "IOAccounting",
    "global_sum",
    "broadcast",
    "point_to_point",
    "VirtualMachine",
    "OutOfCoreArray",
    "NodeProgramExecutor",
    "ProgramExecutor",
    "ExecutionResult",
    "ReductionInputs",
    "reduction_reference",
    "program_reference",
    "PrefetchPolicy",
    "NoPrefetch",
    "OverlapPrefetch",
]
