"""Prefetching policies.

The paper notes that the out-of-core compiler "has to take into account ...
the prefetching/caching strategies used".  The runtime models the effect of
software prefetching as *overlap credit*: when the next slab is prefetched
while the current slab is being computed on, the visible cost of that read is
only the part that could not be hidden behind the computation.

Two policies are provided:

* :class:`NoPrefetch` — every read is fully visible (the paper's measured
  configuration),
* :class:`OverlapPrefetch` — a read following a compute phase is hidden up to
  the duration of that compute phase, scaled by an efficiency factor.

Kernels call :meth:`PrefetchPolicy.begin_compute` /
:meth:`PrefetchPolicy.charge_read` instead of charging reads directly when
they want prefetching applied; the policy then splits the read time into a
hidden part (charged as overlapped/idle-free) and a visible part.
"""

from __future__ import annotations

import dataclasses

from repro.exceptions import RuntimeExecutionError
from repro.machine.cluster import Machine

__all__ = ["PrefetchPolicy", "NoPrefetch", "OverlapPrefetch"]


class PrefetchPolicy:
    """Base class: tracks compute time available for hiding subsequent reads."""

    def __init__(self) -> None:
        self._available: dict[int, float] = {}

    def begin_compute(self, rank: int, seconds: float) -> None:
        """Record that ``rank`` just spent ``seconds`` computing (potential overlap window)."""
        if seconds < 0:
            raise RuntimeExecutionError(f"negative compute window {seconds}")
        self._available[rank] = self._available.get(rank, 0.0) + seconds

    def hidden_fraction(self) -> float:
        """Fraction of the overlap window usable for hiding I/O (0..1)."""
        return 0.0

    def charge_read(self, machine: Machine, rank: int, nbytes: int, nrequests: int) -> float:
        """Charge a (possibly partially hidden) read; returns visible seconds."""
        full = machine.params.disk.read_time(nbytes, nrequests, contention=machine.nprocs)
        window = self._available.get(rank, 0.0) * self.hidden_fraction()
        hidden = min(full, window)
        visible = full - hidden
        # Counters always see the full traffic; only the clock benefits.
        machine.disks[rank].read(nbytes, nrequests, contention=machine.nprocs)
        machine.metrics[rank].record_read(nbytes, nrequests)
        machine.clocks[rank].advance(visible, "io")
        self._available[rank] = max(0.0, self._available.get(rank, 0.0) - hidden)
        return visible


@dataclasses.dataclass
class NoPrefetch(PrefetchPolicy):
    """No overlap: reads are fully visible (the paper's baseline runtime)."""

    def __post_init__(self) -> None:
        super().__init__()

    def hidden_fraction(self) -> float:
        return 0.0


@dataclasses.dataclass
class OverlapPrefetch(PrefetchPolicy):
    """Hide reads behind preceding computation with the given efficiency.

    ``efficiency`` of 1.0 means the full preceding compute window can hide
    I/O; 0.5 means only half of it can (e.g. because of I/O-node contention).
    """

    efficiency: float = 1.0

    def __post_init__(self) -> None:
        super().__init__()
        if not 0.0 <= self.efficiency <= 1.0:
            raise RuntimeExecutionError(
                f"prefetch efficiency must be in [0, 1], got {self.efficiency}"
            )

    def hidden_fraction(self) -> float:
        return self.efficiency
