"""In-core Local Arrays (ICLAs).

The ICLA is the node-memory buffer a slab of the out-of-core local array is
staged into.  Its size is fixed at compile time from the memory budget; the
runtime object tracks which slab currently occupies the buffer so repeated
requests for the same slab can be served from memory (simple reuse, the
degenerate form of the caching/prefetching strategies the paper mentions).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import RuntimeExecutionError
from repro.runtime.slab import Slab

__all__ = ["InCoreLocalArray"]


class InCoreLocalArray:
    """A bounded in-memory buffer holding one slab of an out-of-core local array."""

    def __init__(self, capacity_elements: int, dtype: np.dtype | str = np.float64):
        capacity_elements = int(capacity_elements)
        if capacity_elements < 1:
            raise RuntimeExecutionError(
                f"ICLA capacity must be at least one element, got {capacity_elements}"
            )
        self.capacity_elements = capacity_elements
        self.dtype = np.dtype(dtype)
        self._data: Optional[np.ndarray] = None
        self._slab: Optional[Slab] = None
        self.loads = 0
        self.hits = 0

    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        return self.capacity_elements * self.dtype.itemsize

    @property
    def current_slab(self) -> Optional[Slab]:
        return self._slab

    @property
    def data(self) -> Optional[np.ndarray]:
        return self._data

    def holds(self, slab: Slab) -> bool:
        """True when ``slab`` is already resident in the buffer."""
        return self._slab == slab and self._data is not None

    def load(self, slab: Slab, data: np.ndarray) -> np.ndarray:
        """Place ``data`` (the contents of ``slab``) into the buffer.

        Raises when the slab does not fit in the declared capacity — that
        would mean the compiler's strip-mining violated the memory budget.
        """
        data = np.asarray(data, dtype=self.dtype)
        if data.shape != slab.shape:
            raise RuntimeExecutionError(
                f"ICLA load: data shape {data.shape} does not match {slab.describe()}"
            )
        if slab.nelements > self.capacity_elements:
            raise RuntimeExecutionError(
                f"{slab.describe()} has {slab.nelements} elements which exceeds the "
                f"ICLA capacity of {self.capacity_elements}"
            )
        self._data = data
        self._slab = slab
        self.loads += 1
        return data

    def get(self, slab: Slab) -> np.ndarray:
        """Return the resident data for ``slab``; raises if a different slab is resident."""
        if not self.holds(slab):
            raise RuntimeExecutionError(
                f"ICLA does not hold {slab.describe()} "
                f"(resident: {self._slab.describe() if self._slab else 'nothing'})"
            )
        self.hits += 1
        return self._data  # type: ignore[return-value]

    def invalidate(self) -> None:
        """Drop the resident slab (e.g. after the underlying file was rewritten)."""
        self._data = None
        self._slab = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        resident = self._slab.describe() if self._slab else "empty"
        return f"InCoreLocalArray(capacity={self.capacity_elements}, resident={resident})"
