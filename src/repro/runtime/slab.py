"""Slabs: the unit of strip-mined out-of-core computation.

The out-of-core local array of each processor is processed in *slabs*, each
small enough to fit in the In-core Local Array.  The paper considers two
slabbings of a two-dimensional local array (Figure 11):

* **column slabs** — a slab is a contiguous group of whole local columns,
* **row slabs** — a slab is a contiguous group of whole local rows.

A :class:`Slab` describes one rectangular region of the *local* index space;
:func:`column_slabs` and :func:`row_slabs` partition a local array into slabs
of a requested size, and :func:`make_slabs` dispatches on a
:class:`SlabbingStrategy`.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Tuple

from repro.exceptions import IOEngineError

__all__ = ["Slab", "SlabbingStrategy", "column_slabs", "row_slabs", "make_slabs"]


class SlabbingStrategy(enum.Enum):
    """Which dimension of the local array is strip-mined."""

    COLUMN = "column"
    ROW = "row"

    @classmethod
    def from_name(cls, name: "SlabbingStrategy | str") -> "SlabbingStrategy":
        if isinstance(name, SlabbingStrategy):
            return name
        key = str(name).strip().lower()
        for member in cls:
            if member.value == key or member.name.lower() == key:
                return member
        raise IOEngineError(f"unknown slabbing strategy {name!r}")

    def other(self) -> "SlabbingStrategy":
        """The opposite slabbing (used when enumerating reorganization candidates)."""
        return SlabbingStrategy.ROW if self is SlabbingStrategy.COLUMN else SlabbingStrategy.COLUMN


@dataclasses.dataclass(frozen=True)
class Slab:
    """A rectangular region ``[row_start:row_stop, col_start:col_stop]`` of a local array."""

    index: int
    row_start: int
    row_stop: int
    col_start: int
    col_stop: int

    def __post_init__(self) -> None:
        if self.row_start < 0 or self.col_start < 0:
            raise IOEngineError(f"slab {self} has negative start")
        if self.row_stop < self.row_start or self.col_stop < self.col_start:
            raise IOEngineError(f"slab {self} has negative extent")

    # -- geometry -------------------------------------------------------------
    @property
    def nrows(self) -> int:
        return self.row_stop - self.row_start

    @property
    def ncols(self) -> int:
        return self.col_stop - self.col_start

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.nrows, self.ncols)

    @property
    def nelements(self) -> int:
        return self.nrows * self.ncols

    def nbytes(self, itemsize: int) -> int:
        return self.nelements * int(itemsize)

    @property
    def row_slice(self) -> slice:
        return slice(self.row_start, self.row_stop)

    @property
    def col_slice(self) -> slice:
        return slice(self.col_start, self.col_stop)

    def contains(self, row: int, col: int) -> bool:
        return self.row_start <= row < self.row_stop and self.col_start <= col < self.col_stop

    def contiguous_chunks(self, local_shape: Tuple[int, int], order: str = "F") -> int:
        """Number of contiguous file extents this slab occupies in a LAF.

        ``order`` is the storage order of the Local Array File: ``'F'`` stores
        the local array column-major (Fortran order, the natural choice for
        the paper's column-oriented programs) and ``'C'`` stores it row-major.
        A slab that spans entire columns of a column-major file, or entire
        rows of a row-major file, is a single contiguous extent; otherwise one
        extent per partial column/row is needed.  This is exactly why the
        compiler reorganizes the on-disk storage to match the chosen slabbing.
        """
        nrows, ncols = int(local_shape[0]), int(local_shape[1])
        if self.row_stop > nrows or self.col_stop > ncols:
            raise IOEngineError(f"slab {self} exceeds local shape {local_shape}")
        if self.nelements == 0:
            return 0
        order = order.upper()
        if order == "F":
            if self.nrows == nrows:  # whole columns -> one run of consecutive columns
                return 1
            return self.ncols
        if order == "C":
            if self.ncols == ncols:  # whole rows -> one run of consecutive rows
                return 1
            return self.nrows
        raise IOEngineError(f"unknown storage order {order!r}")

    def describe(self) -> str:
        return (
            f"slab#{self.index}[{self.row_start}:{self.row_stop}, "
            f"{self.col_start}:{self.col_stop}]"
        )


def column_slabs(local_shape: Tuple[int, int], cols_per_slab: int) -> List[Slab]:
    """Partition a local array into slabs of ``cols_per_slab`` whole columns."""
    nrows, ncols = int(local_shape[0]), int(local_shape[1])
    cols_per_slab = int(cols_per_slab)
    if cols_per_slab < 1:
        raise IOEngineError(f"cols_per_slab must be positive, got {cols_per_slab}")
    slabs: List[Slab] = []
    for index, start in enumerate(range(0, ncols, cols_per_slab)):
        stop = min(start + cols_per_slab, ncols)
        slabs.append(Slab(index=index, row_start=0, row_stop=nrows, col_start=start, col_stop=stop))
    if ncols == 0:
        slabs.append(Slab(index=0, row_start=0, row_stop=nrows, col_start=0, col_stop=0))
    return slabs


def row_slabs(local_shape: Tuple[int, int], rows_per_slab: int) -> List[Slab]:
    """Partition a local array into slabs of ``rows_per_slab`` whole rows."""
    nrows, ncols = int(local_shape[0]), int(local_shape[1])
    rows_per_slab = int(rows_per_slab)
    if rows_per_slab < 1:
        raise IOEngineError(f"rows_per_slab must be positive, got {rows_per_slab}")
    slabs: List[Slab] = []
    for index, start in enumerate(range(0, nrows, rows_per_slab)):
        stop = min(start + rows_per_slab, nrows)
        slabs.append(Slab(index=index, row_start=start, row_stop=stop, col_start=0, col_stop=ncols))
    if nrows == 0:
        slabs.append(Slab(index=0, row_start=0, row_stop=0, col_start=0, col_stop=ncols))
    return slabs


def make_slabs(
    local_shape: Tuple[int, int],
    strategy: SlabbingStrategy | str,
    slab_elements: int,
) -> List[Slab]:
    """Partition a local array into slabs holding roughly ``slab_elements`` elements.

    ``slab_elements`` is the in-core local array capacity ``M`` of the paper;
    it is converted into whole columns (column slabbing) or whole rows (row
    slabbing), always at least one.
    """
    strategy = SlabbingStrategy.from_name(strategy)
    nrows, ncols = int(local_shape[0]), int(local_shape[1])
    if slab_elements < 1:
        raise IOEngineError(f"slab_elements must be positive, got {slab_elements}")
    if strategy is SlabbingStrategy.COLUMN:
        per_col = max(nrows, 1)
        cols = max(1, min(ncols if ncols else 1, slab_elements // per_col or 1))
        return column_slabs(local_shape, cols)
    per_row = max(ncols, 1)
    rows = max(1, min(nrows if nrows else 1, slab_elements // per_row or 1))
    return row_slabs(local_shape, rows)
