"""Simulated message passing collectives.

The compiled node programs need three communication primitives:

* :func:`global_sum` — the reduction producing each column (or subcolumn) of
  the result array in the GAXPY kernel,
* :func:`broadcast` — used by redistribution and some kernels, and
* :func:`point_to_point` — a single send/receive pair.

Because all simulated processors live in one OS process, the data movement is
just NumPy arithmetic; the *cost* is charged to the machine model with the
same binomial-tree formulas an NX / MPI implementation would incur.  In
``ESTIMATE`` mode the data arguments may be ``None`` and only costs are
charged.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.exceptions import CollectiveError
from repro.machine.cluster import Machine

__all__ = ["global_sum", "broadcast", "point_to_point", "payload_bytes"]


def payload_bytes(shape: Sequence[int], itemsize: int) -> int:
    """Bytes of a message carrying an array of ``shape`` with ``itemsize`` elements."""
    nelements = 1
    for extent in shape:
        nelements *= int(extent)
    return nelements * int(itemsize)


def global_sum(
    machine: Machine,
    contributions: Optional[Dict[int, np.ndarray]],
    *,
    shape: Sequence[int],
    itemsize: int,
) -> Optional[np.ndarray]:
    """Element-wise sum of one contribution per processor (all-reduce).

    Parameters
    ----------
    machine:
        Machine to charge; all its processors take part.
    contributions:
        Mapping rank -> local contribution, or ``None`` in estimate mode.
    shape / itemsize:
        Payload geometry, used for cost accounting (and validation).
    """
    nbytes = payload_bytes(shape, itemsize)
    nelements = nbytes // max(int(itemsize), 1)
    machine.charge_global_sum(nbytes, nelements=nelements)
    if contributions is None:
        return None
    if len(contributions) != machine.nprocs:
        raise CollectiveError(
            f"global_sum expected {machine.nprocs} contributions, got {len(contributions)}"
        )
    expected = tuple(int(s) for s in shape)
    total: Optional[np.ndarray] = None
    for rank in range(machine.nprocs):
        if rank not in contributions:
            raise CollectiveError(f"global_sum missing contribution from rank {rank}")
        piece = np.asarray(contributions[rank])
        if piece.shape != expected:
            raise CollectiveError(
                f"global_sum: rank {rank} contributed shape {piece.shape}, expected {expected}"
            )
        total = piece.astype(np.float64, copy=True) if total is None else total + piece
    return total


def broadcast(
    machine: Machine,
    data: Optional[np.ndarray],
    *,
    shape: Sequence[int],
    itemsize: int,
) -> Optional[np.ndarray]:
    """Broadcast ``data`` from one processor to all others; returns the payload."""
    nbytes = payload_bytes(shape, itemsize)
    machine.charge_broadcast(nbytes)
    if data is None:
        return None
    data = np.asarray(data)
    expected = tuple(int(s) for s in shape)
    if data.shape != expected:
        raise CollectiveError(f"broadcast: data shape {data.shape}, expected {expected}")
    return data


def point_to_point(
    machine: Machine,
    src: int,
    dst: int,
    data: Optional[np.ndarray],
    *,
    nbytes: int,
) -> Optional[np.ndarray]:
    """Send ``data`` from ``src`` to ``dst``; returns the delivered payload."""
    machine.charge_send(src, dst, nbytes)
    return data
