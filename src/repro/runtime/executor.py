"""Executor for compiled node programs.

The executor is the bridge between the compiler (:mod:`repro.core`) and the
runtime: given a :class:`~repro.core.pipeline.CompiledProgram` it either

* **executes** the program on a :class:`~repro.runtime.vm.VirtualMachine`
  (real Local Array Files, real NumPy arithmetic, verified result) by driving
  the executable kernels with the compiled plan, or
* **estimates** the program by charging the machine model with the statically
  counted operations of the generated node program — the fast path used to
  regenerate the paper-scale experiments (1K x 1K and 2K x 2K arrays on up to
  64 processors) without moving gigabytes through the filesystem.

Both paths report the same :class:`ExecutionResult` structure so experiment
harnesses can switch between them freely.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, TYPE_CHECKING

import numpy as np

from repro.config import ExecutionMode, RunConfig
from repro.exceptions import RuntimeExecutionError
from repro.machine.cluster import Machine
from repro.runtime.vm import VirtualMachine

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import at runtime
    from repro.core.pipeline import CompiledProgram

__all__ = ["ExecutionResult", "NodeProgramExecutor"]


@dataclasses.dataclass
class ExecutionResult:
    """Outcome of running (or estimating) one compiled program."""

    strategy: str
    mode: ExecutionMode
    simulated_seconds: float
    time_breakdown: Dict[str, float]
    io_statistics: Dict[str, float]
    result: Optional[np.ndarray] = None
    verified: Optional[bool] = None
    max_abs_error: Optional[float] = None

    def describe(self) -> str:
        lines = [
            f"{self.strategy} [{self.mode.value}]: {self.simulated_seconds:.2f} simulated seconds",
            f"  io={self.time_breakdown.get('io', 0.0):.2f}s "
            f"compute={self.time_breakdown.get('compute', 0.0):.2f}s "
            f"comm={self.time_breakdown.get('comm', 0.0):.2f}s",
            f"  I/O requests/proc={self.io_statistics.get('io_requests_per_proc', 0):.0f}",
        ]
        if self.verified is not None:
            lines.append(f"  verified: {self.verified}")
        return "\n".join(lines)


class NodeProgramExecutor:
    """Runs or estimates compiled programs."""

    def __init__(self, compiled: "CompiledProgram"):
        self.compiled = compiled

    # ------------------------------------------------------------------
    # real execution
    # ------------------------------------------------------------------
    def execute(
        self,
        vm: VirtualMachine,
        inputs: Optional[object] = None,
        verify: bool = True,
    ) -> ExecutionResult:
        """Execute the compiled program on ``vm`` (which must be in EXECUTE mode)."""
        from repro.kernels.gaxpy import GaxpyInputs, run_compiled_gaxpy

        if not vm.perform_io:
            raise RuntimeExecutionError(
                "NodeProgramExecutor.execute needs a VirtualMachine in EXECUTE mode; "
                "use estimate() for analytic runs"
            )
        if inputs is not None and not isinstance(inputs, GaxpyInputs):
            raise RuntimeExecutionError(
                "execute expects GaxpyInputs for reduction-class programs"
            )
        run = run_compiled_gaxpy(vm, self.compiled, inputs, verify=verify)
        return ExecutionResult(
            strategy=run.strategy,
            mode=ExecutionMode.EXECUTE,
            simulated_seconds=run.simulated_seconds,
            time_breakdown=run.time_breakdown,
            io_statistics=run.io_statistics,
            result=run.result,
            verified=run.verified,
            max_abs_error=run.max_abs_error,
        )

    # ------------------------------------------------------------------
    # analytic estimation from the generated node program
    # ------------------------------------------------------------------
    def estimate(self, machine: Optional[Machine] = None) -> ExecutionResult:
        """Charge a machine with the node program's statically counted operations."""
        compiled = self.compiled
        machine = machine or Machine(compiled.nprocs, compiled.params)
        totals = compiled.node_program.operation_totals()
        itemsize = compiled.program.arrays[compiled.analysis.streamed].itemsize

        arrays = compiled.program.arrays
        for name in compiled.analysis.access:
            read_requests = totals.get(f"read_requests:{name}", 0.0)
            read_elements = totals.get(f"read_elements:{name}", 0.0)
            write_requests = totals.get(f"write_requests:{name}", 0.0)
            write_elements = totals.get(f"write_elements:{name}", 0.0)
            item = arrays[name].itemsize
            for rank in range(machine.nprocs):
                if read_requests or read_elements:
                    machine.charge_read(rank, int(read_elements * item), int(round(read_requests)))
                if write_requests or write_elements:
                    machine.charge_write(rank, int(write_elements * item), int(round(write_requests)))

        flops = totals.get("flops", 0.0)
        for rank in range(machine.nprocs):
            machine.charge_compute(rank, flops)

        # Collectives are charged in bulk: the per-collective time multiplied by
        # the statically counted number of global sums.
        count = totals.get("global_sums", 0.0)
        if count and machine.nprocs > 1:
            elements_each = totals.get("global_sum_elements", 0.0) / count
            payload = elements_each * itemsize
            per_collective = machine.params.network.reduce_time(
                payload, machine.nprocs, nelements=elements_each
            )
            rounds = machine.params.network.collective_rounds(machine.nprocs)
            seconds = count * per_collective
            machine.network.collectives += int(count)
            machine.network.messages += int(count * rounds)
            machine.network.bytes_moved += int(count * rounds * payload)
            machine.network.busy_time += seconds
            for rank in range(machine.nprocs):
                machine.metrics[rank].record_collective(int(count * rounds), int(count * rounds * payload))
                machine.clocks[rank].advance(seconds, "comm")

        breakdown = machine.time_breakdown()
        return ExecutionResult(
            strategy=compiled.node_program.strategy,
            mode=ExecutionMode.ESTIMATE,
            simulated_seconds=machine.elapsed(),
            time_breakdown=breakdown,
            io_statistics=machine.io_statistics(),
        )
