"""The generic executor for compiled node programs.

The executor is the bridge between the compiler (:mod:`repro.core`) and the
runtime.  Every workload — the paper's GAXPY reduction, elementwise
statements, transposes, and arbitrary programs entering through the mini-HPF
frontend — compiles to a :class:`~repro.core.pipeline.CompiledProgram`, and
this module runs it:

* :meth:`NodeProgramExecutor.execute` **executes** the program on a
  :class:`~repro.runtime.vm.VirtualMachine` (real Local Array Files, real
  NumPy arithmetic, verified result), driving the slab loops of the
  compiled access plan with the BLAS-3 batched inner kernels of the fast
  path; and
* :meth:`NodeProgramExecutor.estimate` **estimates** the program by charging
  the machine model with the statically counted operations of the generated
  node program (reduction statements) or by driving the same slab loops in
  charge-only mode (elementwise and transpose statements, whose loop
  structure *is* the cost model) — the fast path used to regenerate the
  paper-scale experiments without moving gigabytes through the filesystem.

Both paths report the same :class:`ExecutionResult` structure so experiment
harnesses can switch between them freely.  The engine functions
(:func:`run_reduction_column` and friends) are generic over the statement's
array names — they read the roles from the compiled analysis — so any
program of the right class runs through them; the historical per-kernel
entry points in :mod:`repro.kernels` are thin wrappers over this module.

Multi-statement programs run through :class:`ProgramExecutor`, which drives
the per-statement engines in order on one virtual machine so intermediates
are consumed straight from the Local Array Files their producers wrote
(charged once, never regenerated), and verifies the whole statement list
against the in-core NumPy oracle (:func:`program_reference`).
"""

from __future__ import annotations

import dataclasses
import os
import signal
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, TYPE_CHECKING

import numpy as np

from repro.config import ExecutionMode, RunConfig
from repro.exceptions import RuntimeExecutionError, SlabCorruptionError
from repro.hpf.array_desc import ArrayDescriptor
from repro.machine.cluster import Machine
from repro.resilience.checksums import SlabManifest
from repro.resilience.journal import program_fingerprint
from repro.runtime.laf import LocalArrayFile
from repro.runtime.ocla import OutOfCoreLocalArray
from repro.runtime.slab import Slab, SlabbingStrategy, column_slabs, make_slabs, row_slabs
from repro.runtime.vm import OutOfCoreArray, VirtualMachine

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import at runtime
    from repro.core.ir import ProgramIR
    from repro.core.pipeline import CompiledProgram, CompiledWholeProgram
    from repro.core.reorganize import AccessPlan

__all__ = [
    "ExecutionResult",
    "ReductionInputs",
    "reduction_reference",
    "program_reference",
    "NodeProgramExecutor",
    "ProgramExecutor",
    "run_reduction_column",
    "run_reduction_row",
    "run_reduction_incore",
    "run_reduction_single_operand",
    "run_elementwise_plan",
    "run_fused_elementwise_plan",
    "run_transpose_plan",
]


# ---------------------------------------------------------------------------
# inputs, references, results
# ---------------------------------------------------------------------------
@dataclasses.dataclass
class ReductionInputs:
    """Dense input operands for one reduction (GAXPY-class) run.

    For single-operand statements (``c = a @ a``) ``streamed`` and
    ``coefficient`` are the same array.
    """

    streamed: np.ndarray     # the matrix whose columns are combined (A)
    coefficient: np.ndarray  # the matrix providing the combination weights (B)

    @property
    def n(self) -> int:
        return self.streamed.shape[0]


def reduction_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense GAXPY product ``C = A B`` computed column by column (equation 1)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n = a.shape[0]
    c = np.zeros((n, b.shape[1]), dtype=np.float64)
    for j in range(b.shape[1]):
        c[:, j] = a @ b[:, j]
    return c


_REFERENCE_OPS = {
    "add": np.add,
    "multiply": np.multiply,
    "subtract": np.subtract,
}


def program_reference(
    program: "ProgramIR", inputs: Dict[str, np.ndarray]
) -> Dict[str, np.ndarray]:
    """The in-core NumPy oracle: evaluate the statement list on dense inputs.

    Returns the environment after the last statement — program inputs (cast to
    ``float64``) plus every statement result.  This is what the differential
    tests and the whole-program executor's verification compare against.
    """
    from repro.core.ir import ElementwiseStatement, ReductionStatement, TransposeStatement

    env: Dict[str, np.ndarray] = {
        name: np.asarray(value, dtype=np.float64) for name, value in inputs.items()
    }
    for statement in program.statements:
        missing = [ref.array for ref in statement.operands if ref.array not in env]
        if missing:
            raise RuntimeExecutionError(
                f"program_reference is missing dense data for {sorted(set(missing))} "
                f"(statement {statement.describe()})"
            )
        if isinstance(statement, ReductionStatement):
            streamed = next(
                (
                    ref.array
                    for ref in statement.operands
                    if ref.full_range_dims() and ref.uses_index(statement.reduce_index)
                ),
                statement.operands[0].array,
            )
            others = [ref.array for ref in statement.operands if ref.array != streamed]
            coefficient = others[0] if others else streamed
            env[statement.result.array] = env[streamed] @ env[coefficient]
        elif isinstance(statement, ElementwiseStatement):
            lhs, rhs = statement.operands
            env[statement.result.array] = _REFERENCE_OPS[statement.op](
                env[lhs.array], env[rhs.array]
            )
        elif isinstance(statement, TransposeStatement):
            env[statement.result.array] = env[statement.operand.array].T.copy()
        else:
            raise RuntimeExecutionError(
                f"no reference evaluation for statement of type {type(statement).__name__}"
            )
    return env


@dataclasses.dataclass
class ExecutionResult:
    """Outcome of running (or estimating) one compiled program.

    Whole-program runs additionally carry ``statements`` — one mapping of
    charged-cost deltas per statement — and ``outputs``, the gathered dense
    result of every statement (``EXECUTE`` mode only); ``result`` is then the
    final statement's output.
    """

    strategy: str
    mode: ExecutionMode
    simulated_seconds: float
    time_breakdown: Dict[str, float]
    io_statistics: Dict[str, float]
    result: Optional[np.ndarray] = None
    verified: Optional[bool] = None
    max_abs_error: Optional[float] = None
    statements: Tuple[Dict[str, float], ...] = ()
    outputs: Optional[Dict[str, np.ndarray]] = None
    #: host-side resilience counters of the run (retries, corruptions
    #: detected/recovered, statements skipped by a resume) — never part of
    #: the charged statistics; ``None`` for analytic estimates.
    resilience: Optional[Dict[str, float]] = None
    #: cumulative charge totals at each statement boundary of a
    #: whole-program run: ``{"elapsed", "time", "io"}`` per statement.  The
    #: distributed backend merges these across rank workers (field-wise max,
    #: the critical-path convention) and re-derives the per-statement deltas
    #: of ``statements`` bit-identically to the simulator.
    statement_totals: Tuple[Dict[str, object], ...] = ()

    def describe(self) -> str:
        lines = [
            f"{self.strategy} [{self.mode.value}]: {self.simulated_seconds:.2f} simulated seconds",
            f"  io={self.time_breakdown.get('io', 0.0):.2f}s "
            f"compute={self.time_breakdown.get('compute', 0.0):.2f}s "
            f"comm={self.time_breakdown.get('comm', 0.0):.2f}s",
            f"  I/O requests/proc={self.io_statistics.get('io_requests_per_proc', 0):.0f}",
        ]
        if self.verified is not None:
            lines.append(f"  verified: {self.verified}")
        return "\n".join(lines)


def _mode(vm: VirtualMachine) -> ExecutionMode:
    return ExecutionMode.EXECUTE if vm.perform_io else ExecutionMode.ESTIMATE


def _recovery_budget(vm: VirtualMachine, narrays: int) -> int:
    """Attempt budget of a corruption repair-and-retry loop.

    The injector's corruption supply is finite: each of the two corruption
    kinds (torn write, bit flip) fires at most ``max_failures_per_site``
    times per site, and a program touching ``narrays`` arrays on ``nprocs``
    processors has ``narrays * nprocs`` sites.  Every failed attempt
    consumes at least one injected corruption, so a budget covering the
    whole supply (plus the transient margin) provably converges.
    """
    budget = max(1, vm.config.io_retries + 4)
    injector = vm.fault_injector
    if injector is not None and injector.policy.active:
        budget += 2 * injector.policy.max_failures_per_site * vm.nprocs * narrays
    return budget


# ---------------------------------------------------------------------------
# shared reduction helpers
# ---------------------------------------------------------------------------
def _uniform_local_shape(descriptor: ArrayDescriptor) -> Tuple[int, int]:
    shapes = {descriptor.local_shape(r) for r in range(descriptor.nprocs)}
    if len(shapes) != 1:
        raise RuntimeExecutionError(
            f"the executable kernels require identical local shapes on every processor; "
            f"array {descriptor.name!r} has {sorted(shapes)} "
            "(choose an extent divisible by the number of processors)"
        )
    return next(iter(shapes))


def _plan_for(compiled: "CompiledProgram", strategy: SlabbingStrategy) -> "AccessPlan":
    """The compiled plan for ``strategy``, falling back through the decision."""
    if compiled.plan.strategy is strategy:
        return compiled.plan
    if compiled.decision is not None:
        return compiled.decision.candidate(strategy)
    return compiled.plan


def _require_distinct_operands(compiled: "CompiledProgram") -> None:
    """Guard the two-operand engines against single-operand programs.

    The conformal-distribution schedule assumes the coefficient's reduce
    dimension is local; with one array in both roles that does not hold, so
    those programs must go through :func:`run_reduction_single_operand`
    (which the dispatchers do automatically).
    """
    analysis = compiled.analysis
    if analysis.coefficient == analysis.streamed:
        raise RuntimeExecutionError(
            "the two-operand reduction engines need distinct streamed and "
            f"coefficient arrays; {analysis.streamed!r} plays both roles — "
            "use run_reduction_single_operand (or the NodeProgramExecutor / "
            "run_compiled_gaxpy dispatchers, which select it automatically)"
        )


def _setup_reduction_arrays(
    vm: VirtualMachine,
    compiled: "CompiledProgram",
    inputs: Optional[ReductionInputs],
    result_order: str,
    streamed_order: str,
) -> Tuple[OutOfCoreArray, OutOfCoreArray, OutOfCoreArray]:
    analysis = compiled.analysis
    arrays = compiled.program.arrays
    s_desc = arrays[analysis.streamed]
    b_desc = arrays[analysis.coefficient]
    c_desc = arrays[analysis.result]
    for desc in (s_desc, b_desc, c_desc):
        _uniform_local_shape(desc)
    if c_desc.name in (s_desc.name, b_desc.name):
        raise RuntimeExecutionError(
            f"the result array {c_desc.name!r} aliases an operand; in-place "
            "reductions are not executable"
        )
    streamed_dense = inputs.streamed if inputs is not None else None
    coefficient_dense = inputs.coefficient if inputs is not None else None
    # ensure_array (not create_array): in a whole-program run an operand that
    # is a previous statement's result already lives in its LAFs and is reused.
    ooc_s = vm.ensure_array(s_desc, initial=streamed_dense, storage_order=streamed_order)
    if b_desc.name == s_desc.name:
        # Single-operand statement: one array plays both roles.
        ooc_b = ooc_s
    else:
        ooc_b = vm.ensure_array(b_desc, initial=coefficient_dense, storage_order="F")
    ooc_c = vm.ensure_array(c_desc, initial=None if not vm.perform_io else
                            np.zeros(c_desc.shape, dtype=c_desc.dtype), storage_order=result_order)
    return ooc_s, ooc_b, ooc_c


def _finish_reduction(
    vm: VirtualMachine,
    strategy: str,
    ooc_c: OutOfCoreArray,
    inputs: Optional[ReductionInputs],
    verify: bool,
) -> ExecutionResult:
    result_dense: Optional[np.ndarray] = None
    verified: Optional[bool] = None
    max_err: Optional[float] = None
    # A rank worker of the distributed backend (vm.rank set) owns only its
    # own local files — the parent gathers and verifies instead.
    if vm.perform_io and vm.rank is None:
        result_dense = vm.to_dense(ooc_c)
        if verify and inputs is not None:
            reference = reduction_reference(inputs.streamed, inputs.coefficient)
            max_err = float(np.max(np.abs(result_dense.astype(np.float64) - reference)))
            scale = float(np.max(np.abs(reference))) or 1.0
            verified = bool(max_err <= 1e-3 * scale)
    return ExecutionResult(
        strategy=strategy,
        mode=_mode(vm),
        simulated_seconds=vm.elapsed(),
        time_breakdown=vm.time_breakdown(),
        io_statistics=vm.io_statistics(),
        result=result_dense,
        verified=verified,
        max_abs_error=max_err,
    )


# ---------------------------------------------------------------------------
# reduction engine: column-slab version (Figure 9)
# ---------------------------------------------------------------------------
def run_reduction_column(
    vm: VirtualMachine,
    compiled: "CompiledProgram",
    inputs: Optional[ReductionInputs] = None,
    verify: bool = True,
) -> ExecutionResult:
    """Execute the column-slab (naive) out-of-core reduction node program."""
    _require_distinct_operands(compiled)
    analysis = compiled.analysis
    plan = _plan_for(compiled, SlabbingStrategy.COLUMN)
    s_entry = plan.entry(analysis.streamed)
    b_entry = plan.entry(analysis.coefficient)
    c_entry = plan.entry(analysis.result)

    ooc_s, ooc_b, ooc_c = _setup_reduction_arrays(vm, compiled, inputs,
                                                  result_order="F", streamed_order="F")
    s_desc, c_desc = ooc_s.descriptor, ooc_c.descriptor
    s_shape = _uniform_local_shape(s_desc)
    b_shape = _uniform_local_shape(ooc_b.descriptor)
    c_shape = _uniform_local_shape(c_desc)
    nprocs = vm.nprocs
    n_rows = c_desc.shape[0]
    itemsize = c_desc.itemsize

    s_slabs = column_slabs(s_shape, s_entry.lines_per_slab)
    b_slabs = column_slabs(b_shape, b_entry.lines_per_slab)
    c_slabs = column_slabs(c_shape, c_entry.lines_per_slab)
    c_slab_of_col = {}
    for slab in c_slabs:
        for col in range(slab.col_start, slab.col_stop):
            c_slab_of_col[col] = slab

    perform = vm.perform_io
    c_buffers: Dict[int, np.ndarray] = {
        rank: np.zeros(c_shape, dtype=c_desc.dtype) for rank in vm.ranks
    } if perform else {}

    # Fast path: the streamed array is read-only, so each slab is loaded from
    # disk once into a float64 staging buffer; every later re-stream of the
    # same slab is charged to the machine (identically to a real re-read) but
    # served from memory.  The arithmetic for all columns of a coefficient
    # slab is then one BLAS-3 GEMM per rank instead of ncols BLAS-2 matvecs.
    a64: Dict[int, np.ndarray] = {}
    products64: Dict[int, np.ndarray] = {}
    if perform:
        max_b_cols = max(slab.ncols for slab in b_slabs)
        a64 = {rank: np.empty(s_shape, dtype=np.float64) for rank in vm.ranks}
        products64 = {
            rank: np.empty((n_rows, max_b_cols), dtype=np.float64) for rank in vm.ranks
        }
    a_loaded: set = set()

    global_col = 0
    for b_slab in b_slabs:
        b_data = {rank: ooc_b.local(rank).fetch_slab(b_slab) for rank in vm.ranks}
        b64 = {
            rank: b_data[rank].astype(np.float64) for rank in vm.ranks
        } if perform else {}
        products: Optional[Dict[int, np.ndarray]] = None
        for m in range(b_slab.ncols):
            j = global_col
            global_col += 1
            for s_slab in s_slabs:
                for rank in vm.ranks:
                    if perform and (rank, s_slab.index) not in a_loaded:
                        a64[rank][:, s_slab.col_slice] = ooc_s.local(rank).fetch_slab(s_slab)
                        a_loaded.add((rank, s_slab.index))
                    else:
                        ooc_s.local(rank).charge_fetch(s_slab)
                    vm.charge_compute(rank, 2.0 * s_slab.nelements)
            if perform and products is None:
                products = {
                    rank: np.matmul(a64[rank], b64[rank],
                                    out=products64[rank][:, : b_slab.ncols])
                    for rank in vm.ranks
                }
            column = vm.comm.global_sum(
                {rank: products[rank][:, m] for rank in vm.ranks} if perform else None,
                shape=(n_rows,),
                itemsize=itemsize,
            )
            owner = c_desc.owner_of_dim(1, j)
            local_j = c_desc.global_to_local((0, j))[1]
            c_slab = c_slab_of_col[local_j]
            if perform and owner in c_buffers:
                c_buffers[owner][:, local_j] = column.astype(c_desc.dtype)
                if local_j == c_slab.col_stop - 1:
                    ooc_c.local(owner).store_slab(
                        c_slab, c_buffers[owner][:, c_slab.col_slice]
                    )
            elif not perform and local_j == c_slab.col_stop - 1:
                ooc_c.local(owner).store_slab(c_slab, None)

    return _finish_reduction(vm, "column-slab", ooc_c, inputs, verify)


# ---------------------------------------------------------------------------
# reduction engine: row-slab version (Figure 12)
# ---------------------------------------------------------------------------
def run_reduction_row(
    vm: VirtualMachine,
    compiled: "CompiledProgram",
    inputs: Optional[ReductionInputs] = None,
    verify: bool = True,
) -> ExecutionResult:
    """Execute the reorganized (row-slab) out-of-core reduction node program."""
    _require_distinct_operands(compiled)
    analysis = compiled.analysis
    plan = _plan_for(compiled, SlabbingStrategy.ROW)
    s_entry = plan.entry(analysis.streamed)
    b_entry = plan.entry(analysis.coefficient)

    ooc_s, ooc_b, ooc_c = _setup_reduction_arrays(vm, compiled, inputs,
                                                  result_order="C", streamed_order="C")
    s_desc, c_desc = ooc_s.descriptor, ooc_c.descriptor
    s_shape = _uniform_local_shape(s_desc)
    b_shape = _uniform_local_shape(ooc_b.descriptor)
    c_shape = _uniform_local_shape(c_desc)
    nprocs = vm.nprocs
    itemsize = c_desc.itemsize

    s_slabs = row_slabs(s_shape, s_entry.lines_per_slab)
    b_slabs = column_slabs(b_shape, b_entry.lines_per_slab)

    perform = vm.perform_io

    # Preallocated per-rank GEMM output buffers, reused across every
    # (streamed slab, coefficient slab) pair.
    products64: Dict[int, np.ndarray] = {}
    if perform:
        max_s_rows = max(slab.nrows for slab in s_slabs)
        max_b_cols = max(slab.ncols for slab in b_slabs)
        products64 = {
            rank: np.empty((max_s_rows, max_b_cols), dtype=np.float64)
            for rank in vm.ranks
        }

    for s_slab in s_slabs:
        a_data = {rank: ooc_s.local(rank).fetch_slab(s_slab) for rank in vm.ranks}
        c_buffer: Dict[int, np.ndarray] = {}
        a64: Dict[int, np.ndarray] = {}
        if perform:
            # Hoisted conversions: one astype per fetched slab, not per column.
            a64 = {rank: a_data[rank].astype(np.float64) for rank in vm.ranks}
            c_buffer = {
                rank: np.zeros((s_slab.nrows, c_shape[1]), dtype=c_desc.dtype)
                for rank in vm.ranks
            }
        global_col = 0
        for b_slab in b_slabs:
            b_data = {rank: ooc_b.local(rank).fetch_slab(b_slab) for rank in vm.ranks}
            products: Optional[Dict[int, np.ndarray]] = None
            if perform:
                # One BLAS-3 GEMM per rank covers every column of this
                # coefficient slab against the resident streamed slab.
                products = {
                    rank: np.matmul(a64[rank], b_data[rank].astype(np.float64),
                                    out=products64[rank][: s_slab.nrows, : b_slab.ncols])
                    for rank in vm.ranks
                }
            for m in range(b_slab.ncols):
                j = global_col
                global_col += 1
                for rank in vm.ranks:
                    vm.charge_compute(rank, 2.0 * s_slab.nelements)
                subcolumn = vm.comm.global_sum(
                    {rank: products[rank][:, m] for rank in vm.ranks} if perform else None,
                    shape=(s_slab.nrows,),
                    itemsize=itemsize,
                )
                owner = c_desc.owner_of_dim(1, j)
                local_j = c_desc.global_to_local((0, j))[1]
                if perform and owner in c_buffer:
                    c_buffer[owner][:, local_j] = subcolumn.astype(c_desc.dtype)
        # the row slab of the result is complete on every owner: flush it
        c_row_slab = Slab(
            index=s_slab.index,
            row_start=s_slab.row_start,
            row_stop=s_slab.row_stop,
            col_start=0,
            col_stop=c_shape[1],
        )
        for rank in vm.ranks:
            ooc_c.local(rank).store_slab(c_row_slab, c_buffer.get(rank) if perform else None)

    return _finish_reduction(vm, "row-slab", ooc_c, inputs, verify)


# ---------------------------------------------------------------------------
# reduction engine: in-core baseline
# ---------------------------------------------------------------------------
def run_reduction_incore(
    vm: VirtualMachine,
    compiled: "CompiledProgram",
    inputs: Optional[ReductionInputs] = None,
    verify: bool = True,
) -> ExecutionResult:
    """Execute the in-core baseline: read every local array once, keep it in memory."""
    _require_distinct_operands(compiled)
    analysis = compiled.analysis
    ooc_s, ooc_b, ooc_c = _setup_reduction_arrays(vm, compiled, inputs,
                                                  result_order="F", streamed_order="F")
    c_desc = ooc_c.descriptor
    c_shape = _uniform_local_shape(c_desc)
    nprocs = vm.nprocs
    n_rows = c_desc.shape[0]
    n_cols = c_desc.shape[1]
    itemsize = c_desc.itemsize
    perform = vm.perform_io

    a_data = {rank: ooc_s.local(rank).fetch_all() for rank in vm.ranks}
    b_data = {rank: ooc_b.local(rank).fetch_all() for rank in vm.ranks}
    c_local = {
        rank: np.zeros(c_shape, dtype=c_desc.dtype) for rank in vm.ranks
    } if perform else {}

    # One whole-local-array GEMM per rank; the per-column loop below only
    # charges costs and runs the (per-column) global sums.
    products: Dict[int, np.ndarray] = {}
    if perform:
        products = {
            rank: a_data[rank].astype(np.float64) @ b_data[rank].astype(np.float64)
            for rank in vm.ranks
        }

    flops_per_proc = analysis.flops_per_proc
    per_column_flops = flops_per_proc / max(n_cols, 1)
    for j in range(n_cols):
        contributions = None
        if perform:
            contributions = {rank: products[rank][:, j] for rank in vm.ranks}
        for rank in vm.ranks:
            vm.charge_compute(rank, per_column_flops)
        column = vm.comm.global_sum(contributions, shape=(n_rows,), itemsize=itemsize)
        if perform:
            owner = c_desc.owner_of_dim(1, j)
            local_j = c_desc.global_to_local((0, j))[1]
            if owner in c_local:
                c_local[owner][:, local_j] = column.astype(c_desc.dtype)

    for rank in vm.ranks:
        ooc_c.local(rank).store_all(c_local.get(rank) if perform else None)

    return _finish_reduction(vm, "in-core", ooc_c, inputs, verify)


# ---------------------------------------------------------------------------
# reduction engine: single-operand statements (c = a @ a)
# ---------------------------------------------------------------------------
def run_reduction_single_operand(
    vm: VirtualMachine,
    compiled: "CompiledProgram",
    inputs: Optional[ReductionInputs] = None,
    verify: bool = True,
) -> ExecutionResult:
    """Execute a reduction whose streamed and coefficient operands are one array.

    With ``a`` playing both roles its column distribution serves the streamed
    access, but the coefficient subcolumn ``a(K_p, j)`` each processor needs
    lives on the *owner* of column ``j`` — the conformal-distribution trick
    of the two-operand engines does not apply.  The executable schedule is
    therefore the reorganized one: every slab of ``a`` is read exactly once
    into a staged local copy, and for each result column the owner broadcasts
    its local column, every processor reduces its partial product, and the
    global sum lands on the owner of the result column.

    The charged I/O is one pass over ``a`` plus one write pass over the
    result; the broadcast traffic is charged per column.  (The analytic
    ESTIMATE path keeps the paper's re-read model for this degenerate case,
    so EXECUTE-mode charges are not comparable between the two modes.)
    """
    analysis = compiled.analysis
    plan = compiled.plan
    entry = plan.entry(analysis.streamed)
    c_entry = plan.entry(analysis.result)

    order = "F" if plan.strategy is SlabbingStrategy.COLUMN else "C"
    ooc_s, _, ooc_c = _setup_reduction_arrays(vm, compiled, inputs,
                                              result_order="F", streamed_order=order)
    s_desc, c_desc = ooc_s.descriptor, ooc_c.descriptor
    s_shape = _uniform_local_shape(s_desc)
    c_shape = _uniform_local_shape(c_desc)
    nprocs = vm.nprocs
    n_rows = c_desc.shape[0]
    n_cols = c_desc.shape[1]
    itemsize = c_desc.itemsize
    perform = vm.perform_io

    # One read pass: stage the full local part of `a` (float64) per rank.
    a64: Dict[int, np.ndarray] = {}
    if perform:
        a64 = {rank: np.empty(s_shape, dtype=np.float64) for rank in vm.ranks}
    for slab in make_slabs(s_shape, plan.strategy, entry.slab_elements):
        for rank in vm.ranks:
            data = ooc_s.local(rank).fetch_slab(slab)
            if perform:
                a64[rank][slab.row_slice, slab.col_slice] = data

    # Global column indices owned by each rank (the reduce dimension of `a`).
    owned_cols = {rank: s_desc.local_index_ranges(rank)[1] for rank in vm.ranks}

    c_buffers: Dict[int, np.ndarray] = {
        rank: np.zeros(c_shape, dtype=c_desc.dtype) for rank in vm.ranks
    } if perform else {}
    c_slabs = column_slabs(c_shape, c_entry.lines_per_slab)
    c_slab_of_col = {}
    for slab in c_slabs:
        for col in range(slab.col_start, slab.col_stop):
            c_slab_of_col[col] = slab

    for j in range(n_cols):
        # The owner of column j of `a` broadcasts it; every rank slices the
        # rows matching its owned reduce indices and forms the partial.
        coeff_owner = s_desc.owner_of_dim(1, j)
        coeff_local_j = s_desc.global_to_local((0, j))[1]
        column_j = vm.comm.broadcast(
            coeff_owner,
            a64[coeff_owner][:, coeff_local_j]
            if perform and coeff_owner in a64 else None,
            shape=(s_desc.shape[0],),
            itemsize=itemsize,
        )
        contributions = None
        if perform:
            contributions = {
                rank: a64[rank] @ column_j[owned_cols[rank]] for rank in vm.ranks
            }
        for rank in vm.ranks:
            vm.charge_compute(rank, 2.0 * s_shape[0] * s_shape[1])
        column = vm.comm.global_sum(contributions, shape=(n_rows,), itemsize=itemsize)
        owner = c_desc.owner_of_dim(1, j)
        local_j = c_desc.global_to_local((0, j))[1]
        c_slab = c_slab_of_col[local_j]
        if perform and owner in c_buffers:
            c_buffers[owner][:, local_j] = column.astype(c_desc.dtype)
            if local_j == c_slab.col_stop - 1:
                ooc_c.local(owner).store_slab(c_slab, c_buffers[owner][:, c_slab.col_slice])
        elif not perform and local_j == c_slab.col_stop - 1:
            ooc_c.local(owner).store_slab(c_slab, None)

    return _finish_reduction(vm, f"{plan.strategy.value}-slab single-operand",
                             ooc_c, inputs, verify)


# ---------------------------------------------------------------------------
# elementwise engine
# ---------------------------------------------------------------------------
def run_elementwise_plan(
    vm: VirtualMachine,
    a_desc: ArrayDescriptor,
    b_desc: ArrayDescriptor,
    c_desc: ArrayDescriptor,
    *,
    op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
    slab_elements: int = 4096,
    strategy: SlabbingStrategy | str = SlabbingStrategy.COLUMN,
    a_dense: Optional[np.ndarray] = None,
    b_dense: Optional[np.ndarray] = None,
    verify: bool = True,
) -> ExecutionResult:
    """Compute ``c = op(a, b)`` out of core, slab by slab.

    All three descriptors must conform (shape, dtype, distribution); the
    dense inputs are required in ``EXECUTE`` mode and ignored otherwise.
    """
    strategy = SlabbingStrategy.from_name(strategy)
    if a_desc.ndim != 2:
        raise RuntimeExecutionError("the elementwise engine handles two-dimensional arrays")

    order = "F" if strategy is SlabbingStrategy.COLUMN else "C"
    ooc_a = vm.ensure_array(a_desc, initial=a_dense, storage_order=order)
    ooc_b = vm.ensure_array(b_desc, initial=b_dense, storage_order=order)
    zeros = np.zeros(c_desc.shape, dtype=c_desc.dtype) if vm.perform_io else None
    ooc_c = vm.ensure_array(c_desc, initial=zeros, storage_order=order)

    flops_per_element = 1.0
    for rank in vm.ranks:
        local_shape = a_desc.local_shape(rank)
        for slab in make_slabs(local_shape, strategy, slab_elements):
            a_block = ooc_a.local(rank).fetch_slab(slab)
            b_block = ooc_b.local(rank).fetch_slab(slab)
            vm.charge_compute(rank, flops_per_element * slab.nelements)
            if vm.perform_io:
                ooc_c.local(rank).store_slab(slab, op(a_block, b_block).astype(c_desc.dtype))
            else:
                ooc_c.local(rank).store_slab(slab, None)

    result = vm.to_dense(ooc_c) if vm.perform_io and vm.rank is None else None
    verified: Optional[bool] = None
    if verify and result is not None and a_dense is not None and b_dense is not None:
        expected = op(np.asarray(a_dense, dtype=np.float64), np.asarray(b_dense, dtype=np.float64))
        verified = bool(np.allclose(result, expected, rtol=1e-4, atol=1e-4))
    return ExecutionResult(
        strategy=f"{strategy.value}-slab elementwise",
        mode=_mode(vm),
        simulated_seconds=vm.elapsed(),
        time_breakdown=vm.time_breakdown(),
        io_statistics=vm.io_statistics(),
        result=result,
        verified=verified,
    )


# ---------------------------------------------------------------------------
# fused elementwise engine
# ---------------------------------------------------------------------------
def run_fused_elementwise_plan(
    vm: VirtualMachine,
    compiled: "CompiledProgram",
    inputs: Optional[Dict[str, np.ndarray]] = None,
    verify: bool = True,
) -> ExecutionResult:
    """Execute a fused elementwise pair: the intermediate never touches disk.

    One slab loop runs both statements' per-slab work: the producer's result
    slab is computed into a resident buffer and handed straight to the
    consumer's compute, so the intermediate array gets no Local Array Files,
    no write pass and no read pass — in ``EXECUTE`` *and* ``ESTIMATE`` mode
    alike, which is what keeps the two modes' charged counters identical.
    The resident slab is cast to the intermediate's declared dtype before the
    consumer uses it, reproducing the unfused schedule's rounding exactly.
    """
    from repro.core.analysis import FusedElementwisePhase

    analysis = compiled.analysis
    if not isinstance(analysis, FusedElementwisePhase):
        raise RuntimeExecutionError(
            "run_fused_elementwise_plan needs a fused elementwise unit; got "
            f"analysis of type {type(analysis).__name__}"
        )
    plan = compiled.plan
    arrays = compiled.program.arrays
    producer, consumer = analysis.producer, analysis.consumer
    p_lhs, p_rhs = producer.operands
    mid = analysis.intermediate
    result = analysis.result
    mid_is_lhs = consumer.operands[0] == mid
    other = consumer.operands[1] if mid_is_lhs else consumer.operands[0]
    p_op = _ELEMENTWISE_OPS[producer.op]
    c_op = _ELEMENTWISE_OPS[consumer.op]
    dense = dict(inputs or {})
    strategy = plan.strategy
    order = "F" if strategy is SlabbingStrategy.COLUMN else "C"

    ooc: Dict[str, OutOfCoreArray] = {}
    for name in (p_lhs, p_rhs, other):
        if name not in ooc:
            ooc[name] = vm.ensure_array(
                arrays[name], initial=dense.get(name), storage_order=order
            )
    result_desc = arrays[result]
    zeros = np.zeros(result_desc.shape, dtype=result_desc.dtype) if vm.perform_io else None
    ooc[result] = vm.ensure_array(result_desc, initial=zeros, storage_order=order)

    mid_dtype = arrays[mid].dtype
    slab_elements = plan.allocation[result]
    for rank in vm.ranks:
        local_shape = result_desc.local_shape(rank)
        for slab in make_slabs(local_shape, strategy, slab_elements):
            a_block = ooc[p_lhs].local(rank).fetch_slab(slab)
            b_block = ooc[p_rhs].local(rank).fetch_slab(slab)
            vm.charge_compute(rank, 1.0 * slab.nelements)
            mid_block = (
                p_op(a_block, b_block).astype(mid_dtype) if vm.perform_io else None
            )
            o_block = ooc[other].local(rank).fetch_slab(slab)
            vm.charge_compute(rank, 1.0 * slab.nelements)
            if vm.perform_io:
                out = c_op(mid_block, o_block) if mid_is_lhs else c_op(o_block, mid_block)
                ooc[result].local(rank).store_slab(slab, out.astype(result_desc.dtype))
            else:
                ooc[result].local(rank).store_slab(slab, None)

    result_dense = vm.to_dense(ooc[result]) if vm.perform_io and vm.rank is None else None
    verified: Optional[bool] = None
    needed = {p_lhs, p_rhs, other}
    if verify and result_dense is not None and needed <= set(dense):
        as64 = {name: np.asarray(dense[name], dtype=np.float64) for name in needed}
        mid64 = p_op(as64[p_lhs], as64[p_rhs])
        expected = c_op(mid64, as64[other]) if mid_is_lhs else c_op(as64[other], mid64)
        verified = bool(np.allclose(result_dense, expected, rtol=1e-4, atol=1e-4))
    return ExecutionResult(
        strategy=f"fused {strategy.value}-slab elementwise",
        mode=_mode(vm),
        simulated_seconds=vm.elapsed(),
        time_breakdown=vm.time_breakdown(),
        io_statistics=vm.io_statistics(),
        result=result_dense,
        verified=verified,
    )


# ---------------------------------------------------------------------------
# transpose engine
# ---------------------------------------------------------------------------
def run_transpose_plan(
    vm: VirtualMachine,
    src_desc: ArrayDescriptor,
    dst_desc: ArrayDescriptor,
    *,
    cols_per_slab: int = 8,
    a_dense: Optional[np.ndarray] = None,
    verify: bool = True,
) -> ExecutionResult:
    """Compute ``dst = src^T`` out of core with both arrays column-block distributed.

    Each processor streams its local columns of the source in slabs, the rows
    of each slab destined for processor ``q`` form the exchange payload
    (all-to-all), and ``q`` writes the transposed piece into its local
    columns of the target.
    """
    if src_desc.ndim != 2 or src_desc.shape[0] != src_desc.shape[1]:
        raise RuntimeExecutionError("the transpose engine handles square two-dimensional arrays")
    nprocs = vm.nprocs
    itemsize = src_desc.itemsize

    source = vm.ensure_array(src_desc, initial=a_dense, storage_order="F")
    zeros = np.zeros(dst_desc.shape, dtype=dst_desc.dtype) if vm.perform_io else None
    target = vm.ensure_array(dst_desc, initial=zeros, storage_order="F")

    result_locals: Dict[int, np.ndarray] = {}
    if vm.perform_io:
        result_locals = {
            rank: np.zeros(dst_desc.local_shape(rank), dtype=dst_desc.dtype)
            for rank in vm.ranks
        }

    for src in range(nprocs):
        local_shape = src_desc.local_shape(src)
        for slab in column_slabs(local_shape, cols_per_slab):
            # Only the slab's owner reads it (and is charged for the read); a
            # rank worker still walks every source rank's slabs so the
            # all-to-all charges and exchanges stay in lockstep across ranks.
            block = source.local(src).fetch_slab(slab) if src in vm.ranks else None
            # exchange: every other processor receives the rows it owns as columns of dst
            payload_bytes = slab.nbytes(itemsize) // max(nprocs, 1)
            vm.comm.charge_all_to_all(payload_bytes)
            if not vm.perform_io:
                continue
            global_cols = src_desc.local_index_ranges(src)[1][slab.col_start:slab.col_stop]
            # Columns of dst owned by ``dest`` correspond to global rows of
            # src with the same indices; the slab contributes
            # dst[g, j] = src[j, g] for every global column g in the slab
            # and every j on ``dest``.
            pieces = {
                dest: block[dst_desc.local_index_ranges(dest)[1], :]
                for dest in range(nprocs)
            } if block is not None else None
            delivered = vm.comm.scatter(src, pieces)
            for dest, piece in delivered.items():
                # piece has shape (|dest columns|, |slab columns|)
                for offset, gcol in enumerate(global_cols):
                    result_locals[dest][gcol, :] = piece[:, offset]

    # write the transposed local arrays slab by slab
    for rank in vm.ranks:
        local_shape = dst_desc.local_shape(rank)
        for slab in column_slabs(local_shape, cols_per_slab):
            if vm.perform_io:
                target.local(rank).store_slab(
                    slab, result_locals[rank][slab.row_slice, slab.col_slice]
                )
            else:
                target.local(rank).store_slab(slab, None)

    result = vm.to_dense(target) if vm.perform_io and vm.rank is None else None
    verified: Optional[bool] = None
    if verify and result is not None and a_dense is not None:
        verified = bool(np.allclose(result, np.asarray(a_dense).T, rtol=1e-5, atol=1e-5))
    return ExecutionResult(
        strategy="column-slab transpose",
        mode=_mode(vm),
        simulated_seconds=vm.elapsed(),
        time_breakdown=vm.time_breakdown(),
        io_statistics=vm.io_statistics(),
        result=result,
        verified=verified,
    )


# ---------------------------------------------------------------------------
# the dispatching executor
# ---------------------------------------------------------------------------
_ELEMENTWISE_OPS: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "add": np.add,
    "multiply": np.multiply,
    "subtract": np.subtract,
}


class NodeProgramExecutor:
    """Runs or estimates compiled programs of any statement kind."""

    def __init__(self, compiled: "CompiledProgram"):
        self.compiled = compiled

    # ------------------------------------------------------------------
    def _statement_kind(self) -> str:
        from repro.core.analysis import FusedElementwisePhase
        from repro.core.ir import ElementwiseStatement, ReductionStatement, TransposeStatement

        if isinstance(self.compiled.analysis, FusedElementwisePhase):
            return "fused-elementwise"
        statement = self.compiled.program.statement
        if isinstance(statement, ReductionStatement):
            return "reduction"
        if isinstance(statement, ElementwiseStatement):
            return "elementwise"
        if isinstance(statement, TransposeStatement):
            return "transpose"
        raise RuntimeExecutionError(
            f"no executor for statement of type {type(statement).__name__}"
        )

    # ------------------------------------------------------------------
    # mode-honoring interpretation of the compiled plan
    # ------------------------------------------------------------------
    def run(
        self,
        vm: VirtualMachine,
        inputs: Optional[object] = None,
        verify: bool = True,
        recover: bool = True,
    ) -> ExecutionResult:
        """Drive ``vm`` through the compiled plan's slab loops.

        Honors the virtual machine's execution mode: in ``EXECUTE`` mode the
        arithmetic and file traffic are real; in ``ESTIMATE`` mode the same
        loops run charge-only.  ``inputs`` is a :class:`ReductionInputs` for
        reduction programs or a mapping of array name to dense operand for
        elementwise/transpose programs (``None`` generates nothing — required
        only for verified ``EXECUTE`` runs).

        When a fault injector is active and ``recover`` is true (the
        default), a mid-statement checksum mismatch triggers a
        charge-neutral re-execution: charges are restored to the
        pre-statement snapshot so the retried statement is charged exactly
        once.  :class:`ProgramExecutor` passes ``recover=False`` — it owns
        recovery across statements (it can regenerate corrupted
        intermediates from their producers, which a single statement
        cannot).
        """
        if not (recover and vm.perform_io and vm.fault_injector is not None):
            return self._run_once(vm, inputs, verify)
        budget = _recovery_budget(vm, len(self.compiled.program.arrays))
        attempts = 0
        while True:
            snapshot = vm.snapshot_charges()
            try:
                if attempts == 0:
                    return self._run_once(vm, inputs, verify)
                # A retry finds the statement's arrays already created; the
                # reuse scope lets the engines overwrite them in place.
                with vm.array_reuse():
                    result = self._run_once(vm, inputs, verify)
                vm.resilience.statements_recovered += 1
                return result
            except SlabCorruptionError:
                attempts += 1
                vm.resilience.corruptions_detected += 1
                vm.restore_charges(snapshot)
                if attempts >= budget:
                    raise
                vm.resilience.slabs_recovered += 1

    def _run_once(
        self,
        vm: VirtualMachine,
        inputs: Optional[object] = None,
        verify: bool = True,
    ) -> ExecutionResult:
        kind = self._statement_kind()
        if kind == "reduction":
            return self._run_reduction(vm, inputs, verify)
        if kind == "elementwise":
            return self._run_elementwise(vm, inputs, verify)
        if kind == "fused-elementwise":
            return run_fused_elementwise_plan(
                vm, self.compiled, dict(inputs or {}), verify
            )
        return self._run_transpose(vm, inputs, verify)

    def _run_reduction(self, vm, inputs, verify) -> ExecutionResult:
        if inputs is not None and not isinstance(inputs, ReductionInputs):
            raise RuntimeExecutionError(
                "execute expects GaxpyInputs/ReductionInputs for reduction-class programs"
            )
        compiled = self.compiled
        if compiled.analysis.coefficient == compiled.analysis.streamed:
            return run_reduction_single_operand(vm, compiled, inputs, verify)
        if compiled.plan.strategy is SlabbingStrategy.ROW:
            return run_reduction_row(vm, compiled, inputs, verify)
        return run_reduction_column(vm, compiled, inputs, verify)

    def _run_elementwise(self, vm, inputs, verify) -> ExecutionResult:
        compiled = self.compiled
        analysis = compiled.analysis
        arrays = compiled.program.arrays
        dense = dict(inputs or {})
        lhs, rhs = analysis.operands
        return run_elementwise_plan(
            vm,
            arrays[lhs],
            arrays[rhs],
            arrays[analysis.result],
            op=_ELEMENTWISE_OPS[analysis.op],
            slab_elements=compiled.plan.allocation[analysis.result],
            strategy=compiled.plan.strategy,
            a_dense=dense.get(lhs),
            b_dense=dense.get(rhs),
            verify=verify,
        )

    def _run_transpose(self, vm, inputs, verify) -> ExecutionResult:
        compiled = self.compiled
        analysis = compiled.analysis
        arrays = compiled.program.arrays
        dense = dict(inputs or {})
        return run_transpose_plan(
            vm,
            arrays[analysis.source],
            arrays[analysis.target],
            cols_per_slab=compiled.plan.entry(analysis.source).lines_per_slab,
            a_dense=dense.get(analysis.source),
            verify=verify,
        )

    # ------------------------------------------------------------------
    # real execution
    # ------------------------------------------------------------------
    def execute(
        self,
        vm: VirtualMachine,
        inputs: Optional[object] = None,
        verify: bool = True,
    ) -> ExecutionResult:
        """Execute the compiled program on ``vm`` (which must be in EXECUTE mode)."""
        if not vm.perform_io:
            raise RuntimeExecutionError(
                "NodeProgramExecutor.execute needs a VirtualMachine in EXECUTE mode; "
                "use estimate() for analytic runs"
            )
        return self.run(vm, inputs, verify)

    # ------------------------------------------------------------------
    # analytic estimation
    # ------------------------------------------------------------------
    def estimate(self, machine: Optional[Machine] = None) -> ExecutionResult:
        """Charge a machine with the node program's statically counted operations.

        Reduction programs are charged in bulk from the generated node
        program's operation totals (the paper-scale fast path).  Elementwise
        and transpose programs run their slab loops in charge-only mode on a
        fresh ``ESTIMATE``-mode virtual machine, because their loop structure
        is the cost model; pass a VM to :meth:`run` instead to control the
        run configuration.
        """
        if self._statement_kind() != "reduction":
            if machine is not None:
                raise RuntimeExecutionError(
                    "bulk estimation applies to reduction programs only; drive "
                    "run() with an ESTIMATE-mode VirtualMachine instead"
                )
            vm = VirtualMachine(
                self.compiled.nprocs,
                self.compiled.params,
                RunConfig(mode=ExecutionMode.ESTIMATE),
            )
            return self.run(vm, None, verify=False)

        compiled = self.compiled
        machine = machine or Machine(compiled.nprocs, compiled.params)
        totals = compiled.node_program.operation_totals()
        itemsize = compiled.program.arrays[compiled.analysis.streamed].itemsize

        arrays = compiled.program.arrays
        for name in compiled.analysis.access:
            read_requests = totals.get(f"read_requests:{name}", 0.0)
            read_elements = totals.get(f"read_elements:{name}", 0.0)
            write_requests = totals.get(f"write_requests:{name}", 0.0)
            write_elements = totals.get(f"write_elements:{name}", 0.0)
            item = arrays[name].itemsize
            for rank in range(machine.nprocs):
                if read_requests or read_elements:
                    machine.charge_read(rank, int(read_elements * item), int(round(read_requests)))
                if write_requests or write_elements:
                    machine.charge_write(rank, int(write_elements * item), int(round(write_requests)))

        flops = totals.get("flops", 0.0)
        for rank in range(machine.nprocs):
            machine.charge_compute(rank, flops)

        # Collectives are charged in bulk: the per-collective time multiplied by
        # the statically counted number of global sums.
        count = totals.get("global_sums", 0.0)
        if count and machine.nprocs > 1:
            elements_each = totals.get("global_sum_elements", 0.0) / count
            payload = elements_each * itemsize
            per_collective = machine.params.network.reduce_time(
                payload, machine.nprocs, nelements=elements_each
            )
            rounds = machine.params.network.collective_rounds(machine.nprocs)
            seconds = count * per_collective
            machine.network.collectives += int(count)
            machine.network.messages += int(count * rounds)
            machine.network.bytes_moved += int(count * rounds * payload)
            machine.network.busy_time += seconds
            for rank in range(machine.nprocs):
                machine.metrics[rank].record_collective(int(count * rounds), int(count * rounds * payload))
                machine.clocks[rank].advance(seconds, "comm")

        breakdown = machine.time_breakdown()
        return ExecutionResult(
            strategy=compiled.node_program.strategy,
            mode=ExecutionMode.ESTIMATE,
            simulated_seconds=machine.elapsed(),
            time_breakdown=breakdown,
            io_statistics=machine.io_statistics(),
        )


# ---------------------------------------------------------------------------
# the whole-program executor
# ---------------------------------------------------------------------------
class ProgramExecutor:
    """Runs or estimates a compiled multi-statement program on one machine.

    Statements execute in order on one :class:`VirtualMachine`, so out-of-core
    arrays persist between them: an intermediate produced by statement *k*
    stays in the Local Array Files its producer wrote and statement *k+1*
    reads it from there directly — its I/O is charged exactly once per pass
    (one write by the producer, one read by the consumer) and the data is
    never regenerated or re-scattered.

    Both modes drive the same per-statement slab loops through
    :class:`NodeProgramExecutor` (``ESTIMATE`` runs them charge-only), so the
    charged I/O counters of the two modes are identical by construction.
    """

    def __init__(self, compiled: "CompiledWholeProgram"):
        self.compiled = compiled

    # ------------------------------------------------------------------
    def _statement_inputs(self, compiled_statement: "CompiledProgram",
                          dense: Dict[str, np.ndarray]):
        """Per-statement inputs: dense data for program inputs only.

        Operands that are earlier results resolve to ``None`` here — the
        engines find their arrays already present in the VM (``ensure_array``)
        and read the producer's LAFs instead of scattering fresh data.
        """
        from repro.core.ir import ReductionStatement

        unit_ir = compiled_statement.program
        statements = unit_ir.statements
        if len(statements) == 1 and isinstance(statements[0], ReductionStatement):
            analysis = compiled_statement.analysis
            return ReductionInputs(
                streamed=dense.get(analysis.streamed),
                coefficient=dense.get(analysis.coefficient),
            )
        # A fused unit spans two statements; the union of their operands
        # covers both (the fused-away intermediate is never in ``dense``).
        return {
            ref.array: dense[ref.array]
            for statement in statements
            for ref in statement.operands
            if ref.array in dense
        }

    # ------------------------------------------------------------------
    def run(
        self,
        vm: VirtualMachine,
        inputs: Optional[Dict[str, np.ndarray]] = None,
        verify: bool = True,
        collect_outputs: Optional[bool] = None,
    ) -> ExecutionResult:
        """Drive ``vm`` through every statement's slab loops, in order.

        Honors the virtual machine's execution mode.  ``inputs`` maps the
        *program input* arrays to dense data (required for ``EXECUTE`` runs;
        ignored in ``ESTIMATE`` mode).  Verification compares every statement
        result against the in-core NumPy oracle (:func:`program_reference`).

        ``collect_outputs`` controls how much is gathered densely in
        ``EXECUTE`` mode: when true, every statement result (intermediates
        included) lands in ``ExecutionResult.outputs``; when false, only the
        final statement's result is gathered.  The default follows ``verify``
        (verification needs everything; an unverified run skips the extra
        read pass over the intermediates).
        """
        program = self.compiled.program
        dense = dict(inputs or {})
        if vm.perform_io:
            missing = [name for name in program.input_arrays() if name not in dense]
            if missing:
                raise RuntimeExecutionError(
                    f"EXECUTE-mode program runs need dense data for every program "
                    f"input; missing {missing}"
                )

        # Checkpointing: adopt (or start) the journal in the VM scratch dir.
        # A journal left by an earlier killed run of the *same* program (same
        # fingerprint) yields a resume point; anything else starts at 0.
        journal = vm.journal if vm.perform_io else None
        resume_from = 0
        if journal is not None:
            journal.begin(program_fingerprint(self.compiled))
            resume_from = self._validate_checkpoint(vm, journal)

        per_statement = []
        statement_totals = []
        previous_time = vm.time_breakdown()
        previous_io = vm.io_statistics()
        previous_elapsed = vm.elapsed()
        with vm.array_reuse():
            for index, compiled_statement in enumerate(self.compiled.statements):
                if index < resume_from:
                    # Completed by the checkpointed run: its result LAFs were
                    # re-validated and restored; nothing is charged.
                    per_statement.append({"seconds": 0.0, "skipped": 1.0})
                    statement_totals.append({
                        "elapsed": previous_elapsed,
                        "time": dict(previous_time),
                        "io": dict(previous_io),
                        "skipped": 1.0,
                    })
                    vm.resilience.statements_skipped += 1
                    continue
                statement_inputs = self._statement_inputs(compiled_statement, dense)
                self._run_statement_resilient(
                    vm, compiled_statement, statement_inputs, dense
                )
                time_now = vm.time_breakdown()
                io_now = vm.io_statistics()
                elapsed_now = vm.elapsed()
                breakdown = {"seconds": elapsed_now - previous_elapsed}
                breakdown.update(
                    {key: time_now[key] - previous_time.get(key, 0.0) for key in time_now}
                )
                breakdown.update(
                    {key: io_now[key] - previous_io.get(key, 0.0) for key in io_now}
                )
                per_statement.append(breakdown)
                statement_totals.append({
                    "elapsed": elapsed_now,
                    "time": dict(time_now),
                    "io": dict(io_now),
                })
                previous_time, previous_io, previous_elapsed = time_now, io_now, elapsed_now
                if journal is not None:
                    self._commit_statement(vm, journal, index, compiled_statement)
                    self._maybe_crash(vm, journal)
        if journal is not None:
            journal.mark_complete()

        # Verification always needs every result; otherwise honor the caller.
        collect = verify or bool(collect_outputs)
        outputs: Optional[Dict[str, np.ndarray]] = None
        result_dense: Optional[np.ndarray] = None
        verified: Optional[bool] = None
        max_err: Optional[float] = None
        if vm.perform_io and vm.rank is None:
            # Fused-away intermediates never materialize — there is no LAF to
            # gather or verify; the fused result itself still gets both.
            fused_away = {
                name for step in self.compiled.schedule.steps for name in step.fused
            }
            materialized = tuple(
                name for name in program.result_arrays() if name not in fused_away
            )
            gather = materialized if collect else materialized[-1:]
            outputs = {name: vm.to_dense(name) for name in gather}
            result_dense = outputs[materialized[-1]]
            if verify:
                reference = program_reference(program, dense)
                max_err = 0.0
                verified = True
                for name in materialized:
                    expected = reference[name]
                    err = float(np.max(np.abs(
                        outputs[name].astype(np.float64) - expected
                    ))) if expected.size else 0.0
                    scale = float(np.max(np.abs(expected))) or 1.0
                    tolerance = (
                        1e-3 if np.dtype(program.arrays[name].dtype).itemsize <= 4
                        else 1e-9
                    )
                    max_err = max(max_err, err)
                    if err > tolerance * scale:
                        verified = False

        strategies = "+".join(
            compiled.plan.strategy.value for compiled in self.compiled.statements
        )
        return ExecutionResult(
            strategy=f"program[{strategies}]",
            mode=_mode(vm),
            simulated_seconds=vm.elapsed(),
            time_breakdown=vm.time_breakdown(),
            io_statistics=vm.io_statistics(),
            result=result_dense,
            verified=verified,
            max_abs_error=max_err,
            statements=tuple(per_statement),
            outputs=outputs,
            resilience=vm.resilience.as_dict() if vm.perform_io else None,
            statement_totals=tuple(statement_totals),
        )

    # ------------------------------------------------------------------
    # resilience: recovery, checkpointing, resume validation
    # ------------------------------------------------------------------
    def _result_array(self, compiled_statement: "CompiledProgram") -> str:
        # A fused unit's program holds two statements; the unit's materialized
        # result is the last one's (the fused intermediate never hits disk).
        return compiled_statement.program.statements[-1].result.array

    def _producer_index(self, name: str) -> Optional[int]:
        for index, compiled_statement in enumerate(self.compiled.statements):
            if self._result_array(compiled_statement) == name:
                return index
        return None

    def _run_statement_resilient(
        self,
        vm: VirtualMachine,
        compiled_statement: "CompiledProgram",
        statement_inputs,
        dense: Dict[str, np.ndarray],
    ) -> None:
        """Run one statement; detect and recover slab corruption charge-neutrally.

        Every attempt is bracketed by a charge snapshot: on a checksum
        failure the charges roll back, the corrupted array is repaired
        (re-executed producer for an intermediate, re-scattered dense data
        for a program input, nothing for the statement's own result — the
        retry overwrites it), and the statement re-runs.  A successful run
        therefore charges the machine exactly once, bit-identical to a
        fault-free run.
        """
        if not vm.perform_io:
            NodeProgramExecutor(compiled_statement).run(
                vm, statement_inputs, verify=False, recover=False
            )
            return
        verify_boundary = vm.config.checksums
        budget = _recovery_budget(vm, len(self.compiled.program.arrays))
        attempts = 0
        pending: Optional[SlabCorruptionError] = None
        while True:
            snapshot = vm.snapshot_charges()
            try:
                if pending is not None:
                    self._repair(vm, pending, compiled_statement, dense)
                    pending = None
                NodeProgramExecutor(compiled_statement).run(
                    vm, statement_inputs, verify=False, recover=False
                )
                if verify_boundary:
                    self._verify_statement_results(vm, compiled_statement)
                if attempts:
                    vm.resilience.statements_recovered += 1
                return
            except SlabCorruptionError as exc:
                attempts += 1
                vm.resilience.corruptions_detected += 1
                vm.restore_charges(snapshot)
                if attempts >= budget:
                    raise
                pending = exc

    def _repair(
        self,
        vm: VirtualMachine,
        error: SlabCorruptionError,
        compiled_statement: "CompiledProgram",
        dense: Dict[str, np.ndarray],
    ) -> None:
        """Restore the corrupted array named by ``error`` to valid data.

        Three cases: the statement's own result (nothing to do — the retry
        overwrites it), an intermediate (re-execute its producer statement,
        charge-neutrally), or a program input (re-scatter the dense data).
        """
        name = error.array
        vm.resilience.slabs_recovered += 1
        if not name or name == self._result_array(compiled_statement):
            return
        producer = self._producer_index(name)
        if producer is not None:
            producer_statement = self.compiled.statements[producer]
            producer_inputs = self._statement_inputs(producer_statement, dense)
            snapshot = vm.snapshot_charges()
            try:
                NodeProgramExecutor(producer_statement).run(
                    vm, producer_inputs, verify=False, recover=False
                )
            finally:
                # Regeneration is pure recovery: the program already paid for
                # this statement once; the simulated machine never sees it.
                vm.restore_charges(snapshot)
            return
        if name in dense and name in vm.arrays:
            scattered = vm.arrays[name].descriptor.scatter(dense[name])
            for rank, ocla in vm.arrays[name].locals.items():
                ocla.laf.write_full(scattered[rank])
            return
        raise error

    def _verify_statement_results(
        self, vm: VirtualMachine, compiled_statement: "CompiledProgram"
    ) -> None:
        """Statement-boundary integrity check of the freshly written result.

        Catches write-time corruption (torn/bit-flipped slabs) *before* the
        statement commits to the journal, so a checkpoint never records a
        corrupt LAF as completed.
        """
        name = self._result_array(compiled_statement)
        array = vm.arrays.get(name)
        if array is None:
            return
        for ocla in array:
            ocla.laf.verify_checksums()

    def _commit_statement(
        self,
        vm: VirtualMachine,
        journal,
        index: int,
        compiled_statement: "CompiledProgram",
    ) -> None:
        """Flush the statement's result LAFs and journal it as completed."""
        name = self._result_array(compiled_statement)
        array = vm.arrays.get(name)
        if array is None:  # pragma: no cover - every engine registers its result
            return
        files = []
        for rank in sorted(array.locals):
            laf = array.locals[rank].laf
            laf.flush()
            laf.sync_manifest()
            files.append({
                "rank": rank,
                "path": str(laf.path),
                "manifest": str(laf.manifest.path) if laf.manifest is not None else None,
                "order": laf.order,
            })
        journal.commit_statement(
            index,
            "; ".join(s.describe() for s in compiled_statement.program.statements),
            {
                name: {
                    "files": files,
                    "shape": [int(v) for v in array.descriptor.shape],
                    "dtype": np.dtype(array.descriptor.dtype).name,
                }
            },
        )

    def _maybe_crash(self, vm: VirtualMachine, journal) -> None:
        """Test hook: SIGKILL this process once N statements are journaled."""
        injector = vm.fault_injector
        if injector is None:
            return
        crash_rank = getattr(injector.policy, "crash_rank", None)
        if crash_rank is not None and vm.rank != crash_rank:
            # The crash is pinned to one rank worker of the distributed
            # backend; every other process survives.
            return
        target = injector.policy.crash_after_statement
        if target is not None and len(journal.entries) >= target:
            os.kill(os.getpid(), signal.SIGKILL)

    def _validate_checkpoint(self, vm: VirtualMachine, journal) -> int:
        """Re-validate journaled statements; restore their arrays into ``vm``.

        Walks the committed entries in order, checking that every recorded
        LAF still exists with the right size and that its slab checksums
        verify.  The first entry that fails truncates the journal there —
        that statement and everything after it re-executes.  Returns the
        index of the first statement to (re-)execute.
        """
        valid = 0
        restored: Dict[str, OutOfCoreArray] = {}
        for position, entry in enumerate(journal.entries):
            if entry.get("index") != position:
                break
            try:
                arrays = {
                    name: self._restore_array(vm, name, meta)
                    for name, meta in entry.get("arrays", {}).items()
                }
            except (SlabCorruptionError, ValueError, OSError, KeyError):
                break
            restored.update(arrays)
            valid = position + 1
        journal.truncate(valid)
        vm.arrays.update(restored)
        return valid

    def _restore_array(self, vm: VirtualMachine, name: str, meta) -> OutOfCoreArray:
        """Reopen one journaled array's LAFs, verifying checksums."""
        existing = vm.arrays.get(name)
        if existing is not None:
            # Same-process re-run: the array is already open; just re-audit it.
            for ocla in existing:
                ocla.laf.verify_checksums()
            return existing
        descriptor = self.compiled.program.arrays[name]
        expected_dtype = np.dtype(descriptor.dtype)
        if np.dtype(meta["dtype"]) != expected_dtype or \
                tuple(meta["shape"]) != tuple(descriptor.shape):
            raise ValueError(f"checkpointed array {name!r} no longer matches the program")
        files = meta["files"]
        if sorted(f["rank"] for f in files) != list(range(descriptor.nprocs)):
            raise ValueError(f"checkpoint of {name!r} is missing processor files")
        locals_: Dict[int, OutOfCoreLocalArray] = {}
        for file_meta in files:
            rank = int(file_meta["rank"])
            path = Path(file_meta["path"])
            local_shape = descriptor.local_shape(rank)
            nbytes = local_shape[0] * local_shape[1] * expected_dtype.itemsize
            if not path.is_file() or path.stat().st_size != nbytes:
                raise ValueError(f"checkpointed file {path} is missing or truncated")
            manifest = None
            if vm.config.checksums:
                manifest_path = file_meta.get("manifest")
                if not manifest_path:
                    raise ValueError(f"checkpointed file {path} has no checksum manifest")
                manifest = SlabManifest.load(Path(manifest_path))
            laf = LocalArrayFile(
                path,
                local_shape,
                descriptor.dtype,
                order=file_meta.get("order", "F"),
                create=False,
                handle_cache=vm.handle_cache,
                array_name=name,
                rank=rank,
                manifest=manifest,
            )
            laf.verify_checksums()
            locals_[rank] = OutOfCoreLocalArray(descriptor, rank, laf, vm.engine, None)
        return OutOfCoreArray(descriptor, locals_)

    # ------------------------------------------------------------------
    def execute(
        self,
        vm: VirtualMachine,
        inputs: Optional[Dict[str, np.ndarray]] = None,
        verify: bool = True,
        collect_outputs: Optional[bool] = None,
    ) -> ExecutionResult:
        """Execute the whole program on ``vm`` (which must be in EXECUTE mode)."""
        if not vm.perform_io:
            raise RuntimeExecutionError(
                "ProgramExecutor.execute needs a VirtualMachine in EXECUTE mode; "
                "use estimate() for analytic runs"
            )
        return self.run(vm, inputs, verify, collect_outputs=collect_outputs)

    # ------------------------------------------------------------------
    def estimate(self, vm: Optional[VirtualMachine] = None) -> ExecutionResult:
        """Charge the statements' slab loops on an ESTIMATE-mode machine.

        Every statement — including reductions — runs its loops charge-only,
        so the reported counters equal an EXECUTE run's counters exactly.
        """
        if vm is None:
            vm = VirtualMachine(
                self.compiled.nprocs,
                self.compiled.params,
                RunConfig(mode=ExecutionMode.ESTIMATE),
            )
        if vm.perform_io:
            raise RuntimeExecutionError(
                "ProgramExecutor.estimate needs a VirtualMachine in ESTIMATE mode; "
                "use execute() for real runs"
            )
        return self.run(vm, None, verify=False)
