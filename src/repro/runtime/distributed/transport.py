"""Inter-process byte transport of the process-parallel EXECUTE backend.

Each rank worker holds one :class:`PipeTransport`: its end of a full mesh of
duplex :func:`multiprocessing.Pipe` connections, created by the parent before
the workers start (so the endpoints travel to the children at spawn/fork time
— both start methods inherit them safely).

Payloads at or above :data:`SHM_THRESHOLD_BYTES` move through a POSIX
shared-memory segment instead of being pickled through the pipe: the sender
creates the segment, copies the array in, ships ``(name, shape, dtype)``, and
unlinks the segment once the receiver acknowledges its copy.  Smaller payloads
(and non-array objects) ride the pipe directly.

The transport is *pure data movement* — nothing here reads clocks or charges
the machine model; ``ProcessComm`` layers the cost accounting on top.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from multiprocessing.connection import Connection
from typing import Callable, Dict, List, Optional

import numpy as np

__all__ = ["SHM_THRESHOLD_BYTES", "PipeTransport"]

#: payloads at least this large ride shared memory instead of the pipe
SHM_THRESHOLD_BYTES = 1 << 16


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Detach an *attached* segment from this process's resource tracker.

    The creating process owns the segment's lifetime (it unlinks after the
    ack).  Python < 3.13 also registers attach-only opens with the resource
    tracker, which would warn about a "leaked" segment at interpreter exit;
    unregistering restores the create-side-owns semantics.
    """
    try:  # pragma: no cover - exercised indirectly, version-dependent
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
    except Exception:
        pass


class PipeTransport:
    """One rank's endpoint of the pairwise pipe mesh.

    ``peers`` maps every other rank to the duplex connection shared with it.
    All collective helpers are SPMD: every rank must call the same helper in
    the same order (the engines guarantee this — they drive identical loops).
    """

    def __init__(self, rank: int, nprocs: int, peers: Dict[int, Connection]):
        self.rank = int(rank)
        self.nprocs = int(nprocs)
        self.peers = dict(peers)

    # ------------------------------------------------------------------
    # point to point
    # ------------------------------------------------------------------
    def send(self, dst: int, value: object) -> None:
        conn = self.peers[dst]
        if isinstance(value, np.ndarray) and value.nbytes >= SHM_THRESHOLD_BYTES:
            array = np.ascontiguousarray(value)
            try:
                shm = shared_memory.SharedMemory(create=True, size=array.nbytes)
            except OSError:
                conn.send(("inline", array))
                return
            try:
                view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
                view[...] = array
                del view
                conn.send(("shm", shm.name, array.shape, str(array.dtype)))
                conn.recv()  # receiver finished copying out of the segment
            finally:
                shm.close()
                shm.unlink()
            return
        conn.send(("inline", value))

    def recv(self, src: int) -> object:
        message = self.peers[src].recv()
        kind = message[0]
        if kind == "inline":
            return message[1]
        _, name, shape, dtype = message
        shm = shared_memory.SharedMemory(name=name)
        _untrack(shm)
        try:
            value = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf).copy()
        finally:
            shm.close()
        self.peers[src].send(("inline", None))  # ack: segment may be unlinked
        return value

    # ------------------------------------------------------------------
    # collectives (SPMD: every rank calls these at the same program point)
    # ------------------------------------------------------------------
    def gather_to_root(self, value: object, root: int = 0) -> Optional[List[object]]:
        """Root returns ``[value_0, ..., value_{P-1}]`` in rank order; others ``None``."""
        if self.rank == root:
            gathered: List[object] = [None] * self.nprocs
            gathered[root] = value
            for other in range(self.nprocs):
                if other != root:
                    gathered[other] = self.recv(other)
            return gathered
        self.send(root, value)
        return None

    def broadcast_from(self, value: object, root: int = 0) -> object:
        if self.rank == root:
            for other in range(self.nprocs):
                if other != root:
                    self.send(other, value)
            return value
        return self.recv(root)

    def allreduce(self, value: object, combine: Callable[[List[object]], object]) -> object:
        """Combine every rank's ``value`` at rank 0 and return the result everywhere."""
        gathered = self.gather_to_root(value, 0)
        combined = combine(gathered) if self.rank == 0 else None
        return self.broadcast_from(combined, 0)

    def scatter_from(self, root: int, parts: Optional[Dict[int, object]]) -> object:
        """Root distributes ``parts[r]`` to each rank ``r``; returns this rank's part."""
        if self.rank == root:
            assert parts is not None
            for other in range(self.nprocs):
                if other != root:
                    self.send(other, parts[other])
            return parts[root]
        return self.recv(root)

    def barrier(self) -> None:
        self.gather_to_root(None, 0)
        self.broadcast_from(None, 0)

    # ------------------------------------------------------------------
    def close(self) -> None:
        for conn in self.peers.values():
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
