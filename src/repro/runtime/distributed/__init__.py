"""Process-parallel EXECUTE backend: one OS process per simulated rank.

Charged statistics stay bit-identical to the single-process simulator — see
:mod:`repro.runtime.comm` for the backend abstraction the engines program
against and :mod:`repro.runtime.distributed.backend` for the merge argument.
"""

from repro.runtime.distributed.backend import default_start_method, execute_distributed
from repro.runtime.distributed.proc_comm import ProcessComm
from repro.runtime.distributed.transport import SHM_THRESHOLD_BYTES, PipeTransport
from repro.runtime.distributed.worker import WorkerSpec, run_worker

__all__ = [
    "execute_distributed",
    "default_start_method",
    "ProcessComm",
    "PipeTransport",
    "SHM_THRESHOLD_BYTES",
    "WorkerSpec",
    "run_worker",
]
