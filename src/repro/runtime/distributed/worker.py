"""The rank worker of the process-parallel EXECUTE backend.

:func:`run_worker` is the target of every worker :class:`multiprocessing.Process`.
It must be importable at module top level so the ``spawn`` start method can
find it; everything a worker needs travels in a picklable :class:`WorkerSpec`
(workload name + point + machine parameters + run configuration) — the worker
recompiles the program itself, which is deterministic, so spawn-started
workers see exactly the schedule the parent planned.

Each worker builds a single-rank :class:`~repro.runtime.vm.VirtualMachine`
(``rank=r`` with a :class:`~repro.runtime.distributed.proc_comm.ProcessComm`)
inside its own scratch subtree and drives the ordinary executors over it.
Input data comes from the workload's seeded generator, so every worker holds
bit-identical dense operands and slices its own rank's parts from them.  On
success the worker ships its charged statistics (its own rank's row — every
other row of its machine stays zero) and the paths of its result Local Array
Files back through a result pipe; the parent max-merges the statistics and
gathers the files.
"""

from __future__ import annotations

import dataclasses
import traceback
from pathlib import Path
from typing import Dict, Optional

from repro.config import RunConfig
from repro.machine.parameters import MachineParameters

__all__ = ["WorkerSpec", "run_worker"]


@dataclasses.dataclass(frozen=True)
class WorkerSpec:
    """Everything one rank worker needs, shippable through pickle."""

    workload_name: str
    point: "object"  # WorkloadPoint (frozen, hashable, picklable)
    params: MachineParameters
    config: RunConfig
    job_dir: str


def _materialized_names(program) -> tuple:
    """The result arrays that actually exist on disk after the run."""
    from repro.core.pipeline import CompiledWholeProgram

    if isinstance(program, CompiledWholeProgram):
        fused_away = {name for step in program.schedule.steps for name in step.fused}
        return tuple(
            name for name in program.program.result_arrays() if name not in fused_away
        )
    return (program.program.statements[-1].result.array,)


def _run(rank: int, nprocs: int, spec: WorkerSpec, transport) -> Dict[str, object]:
    from repro.api.workload import get_workload
    from repro.runtime.distributed.proc_comm import ProcessComm
    from repro.runtime.executor import (
        NodeProgramExecutor,
        ProgramExecutor,
        run_reduction_incore,
    )
    from repro.runtime.vm import VirtualMachine

    workload = get_workload(spec.workload_name)
    compiled = workload.compile(spec.point, spec.params)
    program = compiled.program
    # The worker's files outlive its VM: the parent gathers and verifies
    # them, then removes the whole job directory.
    config = dataclasses.replace(spec.config, keep_files=True)
    vm = VirtualMachine(
        compiled.nprocs,
        compiled.params,
        config,
        work_dir=Path(spec.job_dir) / f"rank_{rank}",
        rank=rank,
        comm=ProcessComm(transport),
    )
    inputs = workload.generate_inputs(compiled, config.seed)
    if compiled.baseline == "incore":
        result = run_reduction_incore(vm, program, inputs, verify=False)
    elif workload._is_whole_program(program):
        result = ProgramExecutor(program).execute(vm, inputs, verify=False)
    else:
        result = NodeProgramExecutor(program).execute(vm, inputs, verify=False)

    results_meta: Dict[str, Dict[str, str]] = {}
    for name in _materialized_names(program):
        laf = vm.arrays[name].locals[rank].laf
        laf.flush()
        results_meta[name] = {"path": str(laf.path), "order": laf.order}
    payload = {
        "rank": rank,
        "elapsed": vm.elapsed(),
        "time_breakdown": vm.time_breakdown(),
        "io_statistics": vm.io_statistics(),
        "statement_totals": result.statement_totals,
        "resilience": vm.resilience.as_dict(),
        "results": results_meta,
    }
    # keep_files=True: closes every LAF handle but leaves the files (and the
    # journal) in place for the parent.
    vm.cleanup()
    return payload


def run_worker(rank: int, nprocs: int, spec: WorkerSpec, peers, result_conn) -> None:
    """Process entry point: run rank ``rank`` and report through ``result_conn``."""
    from repro.runtime.distributed.transport import PipeTransport

    transport = PipeTransport(rank, nprocs, peers)
    try:
        payload = _run(rank, nprocs, spec, transport)
    except BaseException:
        try:
            result_conn.send(("error", traceback.format_exc()))
        except OSError:  # pragma: no cover - parent already gone
            pass
        raise SystemExit(1)
    finally:
        transport.close()
    result_conn.send(("ok", payload))
