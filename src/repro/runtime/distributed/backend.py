"""Parent-side orchestration of the process-parallel EXECUTE backend.

:func:`execute_distributed` runs one compiled workload point with one OS
process per rank.  The parent

1. creates a job directory (a ``vm_*`` scratch sibling, so the reaper's
   rules apply to it) and a full mesh of pairwise pipes,
2. starts one :func:`~repro.runtime.distributed.worker.run_worker` process
   per rank and waits for every result pipe,
3. max-merges the workers' charged statistics (every reported statistic is a
   maximum over processors, and each worker's machine carries exactly its own
   rank's row, so the field-wise maximum over workers *is* the simulator's
   aggregate — bit for bit),
4. gathers the result Local Array Files, verifies them against the same dense
   references the simulator uses, and
5. assembles the ordinary :class:`~repro.api.records.RunRecord`.

A worker that dies (crash, SIGKILL, unhandled exception) surfaces as a
:class:`~repro.exceptions.DistributedExecutionError`; the parent then tears
the remaining workers down and removes the job directory, so no scratch is
leaked even on failure.
"""

from __future__ import annotations

import multiprocessing
import shutil
import uuid
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.config import RunConfig
from repro.exceptions import DistributedExecutionError
from repro.resilience.reaper import write_owner_file
from repro.runtime.distributed.worker import WorkerSpec, run_worker
from repro.runtime.laf import LocalArrayFile

__all__ = ["execute_distributed", "default_start_method"]

#: seconds between liveness sweeps while waiting on worker results
_POLL_INTERVAL_S = 0.05


def default_start_method() -> str:
    """``fork`` where available (fast), else ``spawn`` (everywhere)."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


# ---------------------------------------------------------------------------
# merging worker statistics
# ---------------------------------------------------------------------------
def _max_merge(dicts: List[Dict[str, float]]) -> Dict[str, float]:
    merged: Dict[str, float] = {}
    for mapping in dicts:
        for key, value in mapping.items():
            merged[key] = max(merged.get(key, 0.0), value)
    return merged


def _sum_merge(dicts: List[Dict[str, float]]) -> Dict[str, float]:
    merged: Dict[str, float] = {}
    for mapping in dicts:
        for key, value in mapping.items():
            merged[key] = merged.get(key, 0.0) + value
    return merged


def _merge_statements(payloads: List[Dict[str, object]]) -> Tuple[Dict[str, float], ...]:
    """Re-derive per-statement deltas from max-merged cumulative boundaries.

    Each worker reports the *cumulative* charge totals at every statement
    boundary; the cross-rank aggregate of a boundary is the field-wise max
    (the critical-path convention of every reported statistic), and the
    simulator's per-statement breakdown is exactly the difference between
    consecutive aggregated boundaries — starting from zero on a fresh VM.
    """
    totals_per_worker = [p["statement_totals"] for p in payloads]
    count = max((len(t) for t in totals_per_worker), default=0)
    if count == 0:
        return ()
    statements: List[Dict[str, float]] = []
    prev_elapsed = 0.0
    prev_time: Dict[str, float] = {}
    prev_io: Dict[str, float] = {}
    for index in range(count):
        boundaries = [t[index] for t in totals_per_worker if index < len(t)]
        elapsed = max(float(b["elapsed"]) for b in boundaries)
        time_now = _max_merge([dict(b["time"]) for b in boundaries])
        io_now = _max_merge([dict(b["io"]) for b in boundaries])
        breakdown: Dict[str, float] = {"seconds": elapsed - prev_elapsed}
        breakdown.update(
            {key: time_now[key] - prev_time.get(key, 0.0) for key in time_now}
        )
        breakdown.update(
            {key: io_now[key] - prev_io.get(key, 0.0) for key in io_now}
        )
        statements.append(breakdown)
        prev_elapsed, prev_time, prev_io = elapsed, time_now, io_now
    return tuple(statements)


# ---------------------------------------------------------------------------
# gathering and verifying results
# ---------------------------------------------------------------------------
def _gather_results(compiled, payloads: List[Dict[str, object]]) -> Dict[str, np.ndarray]:
    """Reassemble each materialized result array from the workers' LAFs."""
    arrays = compiled.program.program.arrays
    gathered: Dict[str, np.ndarray] = {}
    for name in payloads[0]["results"]:
        descriptor = arrays[name]
        locals_: Dict[int, np.ndarray] = {}
        for payload in payloads:
            rank = int(payload["rank"])
            meta = payload["results"][name]
            laf = LocalArrayFile(
                Path(meta["path"]),
                descriptor.local_shape(rank),
                descriptor.dtype,
                order=meta["order"],
                create=False,
            )
            try:
                locals_[rank] = laf.read_full()
            finally:
                laf.close()
        gathered[name] = descriptor.gather(locals_)
    return gathered


def _verify(
    compiled, config: RunConfig, outputs: Dict[str, np.ndarray]
) -> Tuple[Optional[bool], Optional[float]]:
    """Verify gathered results exactly the way the simulated engines do.

    Applies the per-kind reference arithmetic and tolerance of the
    corresponding engine, so a distributed record is comparable
    field-by-field with a simulated one.
    """
    from repro.runtime.executor import (
        NodeProgramExecutor,
        ReductionInputs,
        program_reference,
        reduction_reference,
    )

    program = compiled.program
    workload = compiled.workload
    inputs = workload.generate_inputs(compiled, config.seed)

    if workload._is_whole_program(program):
        dense = dict(inputs)
        reference = program_reference(program.program, dense)
        max_err = 0.0
        verified = True
        for name, result in outputs.items():
            expected = reference[name]
            err = float(np.max(np.abs(
                result.astype(np.float64) - expected
            ))) if expected.size else 0.0
            scale = float(np.max(np.abs(expected))) or 1.0
            tolerance = (
                1e-3 if np.dtype(program.program.arrays[name].dtype).itemsize <= 4
                else 1e-9
            )
            max_err = max(max_err, err)
            if err > tolerance * scale:
                verified = False
        return verified, max_err

    (result,) = outputs.values()
    kind = (
        "reduction" if compiled.baseline == "incore"
        else NodeProgramExecutor(program)._statement_kind()
    )
    if kind == "reduction":
        assert isinstance(inputs, ReductionInputs)
        reference = reduction_reference(inputs.streamed, inputs.coefficient)
        max_err = float(np.max(np.abs(result.astype(np.float64) - reference)))
        scale = float(np.max(np.abs(reference))) or 1.0
        return bool(max_err <= 1e-3 * scale), max_err
    # elementwise / fused-elementwise / transpose: the engines compare with
    # allclose and report no max_abs_error.
    (name,) = outputs.keys()
    expected = program_reference(program.program, dict(inputs))[name]
    tolerance = 1e-5 if kind == "transpose" else 1e-4
    return bool(np.allclose(result, expected, rtol=tolerance, atol=tolerance)), None


# ---------------------------------------------------------------------------
# the backend entry point
# ---------------------------------------------------------------------------
def execute_distributed(
    compiled,
    config: RunConfig,
    verify: bool = True,
    start_method: Optional[str] = None,
):
    """Run one compiled workload point with one worker process per rank.

    Returns the same :class:`~repro.api.records.RunRecord` a simulated
    EXECUTE run of the point produces — with bit-identical charged
    statistics.  ``config`` must be in EXECUTE mode.
    """
    program = compiled.program
    if program is None:
        raise DistributedExecutionError(
            f"workload {compiled.workload.name!r} compiled without a program; "
            "the distributed backend cannot run it"
        )
    nprocs = int(compiled.nprocs)
    method = start_method or default_start_method()
    ctx = multiprocessing.get_context(method)

    scratch = config.ensure_scratch_dir()
    job_dir = Path(scratch) / f"vm_{uuid.uuid4().hex[:12]}"
    job_dir.mkdir(parents=True, exist_ok=True)
    write_owner_file(job_dir)

    spec = WorkerSpec(
        workload_name=compiled.workload.name,
        point=compiled.point,
        params=compiled.params,
        config=config,
        job_dir=str(job_dir),
    )

    # Full mesh of pairwise duplex pipes, created before the workers start so
    # both fork and spawn inherit the endpoints at Process creation.
    mesh: Dict[int, Dict[int, object]] = {rank: {} for rank in range(nprocs)}
    for i in range(nprocs):
        for j in range(i + 1, nprocs):
            end_i, end_j = ctx.Pipe(True)
            mesh[i][j] = end_i
            mesh[j][i] = end_j

    workers = []
    result_conns = []
    child_ends = []
    for rank in range(nprocs):
        parent_conn, child_conn = ctx.Pipe(False)
        workers.append(ctx.Process(
            target=run_worker,
            args=(rank, nprocs, spec, mesh[rank], child_conn),
            daemon=True,
        ))
        result_conns.append(parent_conn)
        child_ends.append(child_conn)

    payloads: List[Optional[Dict[str, object]]] = [None] * nprocs
    failure: Optional[Tuple[int, str, Optional[int]]] = None
    try:
        for proc in workers:
            proc.start()
        # The parent's copies of the workers' endpoints must close so a dead
        # worker's peers see EOF instead of blocking forever.
        for rank in range(nprocs):
            for conn in mesh[rank].values():
                conn.close()
            child_ends[rank].close()

        pending = set(range(nprocs))
        while pending and failure is None:
            for rank in sorted(pending):
                conn = result_conns[rank]
                if conn.poll(_POLL_INTERVAL_S):
                    try:
                        status, body = conn.recv()
                    except (EOFError, OSError):
                        status, body = (
                            "error", "result pipe closed before a result arrived"
                        )
                    if status == "ok":
                        payloads[rank] = body
                        pending.discard(rank)
                    else:
                        failure = (rank, str(body), workers[rank].exitcode)
                    break
                if not workers[rank].is_alive() and not conn.poll(0):
                    exitcode = workers[rank].exitcode
                    failure = (
                        rank,
                        f"worker process died with exit code {exitcode} "
                        "before reporting a result",
                        exitcode,
                    )
                    break
    finally:
        for proc in workers:
            if proc.is_alive():
                proc.terminate()
        for proc in workers:
            # A worker whose start() itself failed has no pid; joining it
            # would assert and mask the original error.
            if proc.pid is not None:
                proc.join(timeout=10)
        for conn in result_conns:
            conn.close()
        if failure is not None:
            shutil.rmtree(job_dir, ignore_errors=True)

    if failure is not None:
        rank, detail, exitcode = failure
        raise DistributedExecutionError(
            f"rank {rank} worker failed: {detail}", rank=rank, exitcode=exitcode
        )

    merged_payloads = [p for p in payloads if p is not None]
    elapsed = max(float(p["elapsed"]) for p in merged_payloads)
    time_breakdown = _max_merge([dict(p["time_breakdown"]) for p in merged_payloads])
    io_statistics = _max_merge([dict(p["io_statistics"]) for p in merged_payloads])
    resilience = _sum_merge([dict(p["resilience"]) for p in merged_payloads])
    statements = _merge_statements(merged_payloads)

    verified: Optional[bool] = None
    max_err: Optional[float] = None
    try:
        if verify:
            outputs = _gather_results(compiled, merged_payloads)
            verified, max_err = _verify(compiled, config, outputs)
    finally:
        if not config.keep_files:
            shutil.rmtree(job_dir, ignore_errors=True)

    return compiled.workload._record(
        compiled,
        mode="execute",
        simulated_seconds=elapsed,
        time_breakdown=time_breakdown,
        io_statistics=io_statistics,
        verified=verified,
        max_abs_error=max_err,
        statements=statements,
        resilience=resilience,
    )
