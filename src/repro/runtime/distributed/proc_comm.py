"""Charge-parity collectives for one rank worker.

:class:`ProcessComm` implements the :class:`~repro.runtime.comm.CommBackend`
interface for a worker process that owns exactly one rank of the machine.
Data really moves over the :class:`~repro.runtime.distributed.transport.PipeTransport`;
*charges* touch only this rank's clock and counter row, applying exactly the
arithmetic :meth:`repro.machine.cluster.Machine.charge_global_sum` (and
friends) applies to that row in the simulator:

* the clock synchronization of a blocking collective becomes an all-reduce of
  the workers' own clock values — ``gap = global_max - my_now`` charged as
  idle time is bitwise the simulator's ``ClockSet.synchronize``, because each
  worker's own clock follows the identical charge sequence as the simulator's
  clock for that rank (induction over the SPMD program);
* the collective seconds come from the same :class:`NetworkModel` formula
  with the same arguments, so they are the same float on every rank;
* the float64 accumulation of a global sum happens at rank 0 in rank order,
  reproducing the simulator's summation order bit-for-bit.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.exceptions import CollectiveError
from repro.machine.cluster import Machine
from repro.runtime.collectives import payload_bytes
from repro.runtime.comm import CommBackend
from repro.runtime.distributed.transport import PipeTransport

__all__ = ["ProcessComm"]


class ProcessComm(CommBackend):
    """One rank's collectives: real bytes over the transport, own-row charges."""

    def __init__(self, transport: PipeTransport):
        self.transport = transport
        self.rank = transport.rank
        self.machine: Optional[Machine] = None

    def bind(self, machine: Machine) -> None:
        if machine.nprocs != self.transport.nprocs:
            raise CollectiveError(
                f"transport spans {self.transport.nprocs} ranks but the machine "
                f"has {machine.nprocs} processors"
            )
        self.machine = machine

    # ------------------------------------------------------------------
    def _synchronize_to(self, global_now: float) -> None:
        """This rank's share of ``ClockSet.synchronize()`` against the global max."""
        clock = self.machine.clocks[self.rank]
        gap = global_now - clock.now
        if gap > 0:
            clock.advance(gap, "idle")

    def _own_now(self) -> float:
        return self.machine.clocks[self.rank].now

    def _charge_collective(self, seconds: float, messages: int, nbytes_each: int) -> None:
        self.machine.metrics[self.rank].record_collective(
            messages, messages * nbytes_each
        )
        self.machine.clocks[self.rank].advance(seconds, "comm")

    def _check_shape(self, piece: np.ndarray, shape) -> np.ndarray:
        expected = tuple(int(s) for s in shape)
        if piece.shape != expected:
            raise CollectiveError(
                f"global_sum: rank {self.rank} contributed shape {piece.shape}, "
                f"expected {expected}"
            )
        return piece

    # ------------------------------------------------------------------
    def global_sum(self, contributions, *, shape, itemsize):
        machine = self.machine
        nprocs = machine.nprocs
        nbytes = payload_bytes(shape, itemsize)
        nelements = nbytes // max(int(itemsize), 1)
        if contributions is None or self.rank not in contributions:
            raise CollectiveError(
                "the distributed backend runs EXECUTE mode only; global_sum "
                "needs this rank's contribution"
            )
        piece = self._check_shape(np.asarray(contributions[self.rank]), shape)

        # One combined round trip: root receives (now, piece) from everyone,
        # reduces both, and broadcasts (global_now, total).
        gathered = self.transport.gather_to_root((self._own_now(), piece), 0)
        if self.transport.rank == 0:
            global_now = max(now for now, _ in gathered)
            total: Optional[np.ndarray] = None
            for rank in range(nprocs):
                contribution = np.asarray(gathered[rank][1])
                total = (
                    contribution.astype(np.float64, copy=True)
                    if total is None
                    else total + contribution
                )
            reply = (global_now, total)
        else:
            reply = None
        global_now, total = self.transport.broadcast_from(reply, 0)

        self._synchronize_to(float(global_now))
        seconds = machine.network.global_sum(nbytes, nprocs, nelements)
        rounds = machine.network.params.collective_rounds(nprocs)
        self._charge_collective(seconds, rounds, nbytes)
        return np.asarray(total)

    # ------------------------------------------------------------------
    def broadcast(self, root, data, *, shape, itemsize):
        machine = self.machine
        nprocs = machine.nprocs
        nbytes = payload_bytes(shape, itemsize)

        global_now = float(self.transport.allreduce(self._own_now(), max))
        self._synchronize_to(global_now)
        seconds = machine.network.broadcast(nbytes, nprocs)
        rounds = machine.network.params.collective_rounds(nprocs)
        self._charge_collective(seconds, rounds, nbytes)

        payload = self.transport.broadcast_from(
            np.asarray(data) if self.rank == root else None, root
        )
        if payload is None:
            raise CollectiveError(
                f"broadcast from rank {root} delivered no payload (EXECUTE mode "
                "needs real data)"
            )
        value = np.asarray(payload)
        expected = tuple(int(s) for s in shape)
        if value.shape != expected:
            raise CollectiveError(
                f"broadcast: data shape {value.shape}, expected {expected}"
            )
        return value

    # ------------------------------------------------------------------
    def charge_all_to_all(self, nbytes_per_pair: int) -> float:
        machine = self.machine
        nprocs = machine.nprocs
        global_now = float(self.transport.allreduce(self._own_now(), max))
        self._synchronize_to(global_now)
        seconds = machine.network.all_to_all(nbytes_per_pair, nprocs)
        exchanges = max(nprocs - 1, 0)
        self._charge_collective(seconds, exchanges, nbytes_per_pair)
        return seconds

    # ------------------------------------------------------------------
    def scatter(self, root, parts):
        """Move ``parts[r]`` to each rank ``r``; pure transport, never charged.

        (The matching cost is charged separately by the engine —
        the transpose engine charges ``charge_all_to_all`` per slab.)
        """
        piece = self.transport.scatter_from(root, parts)
        return {self.rank: np.asarray(piece)}
