"""Out-of-core Local Arrays (OCLAs).

An OCLA is one processor's share of a distributed out-of-core array: it knows
the processor rank, the local shape derived from the array descriptor, the
Local Array File holding the data, and (optionally) an In-core Local Array
used to stage slabs.  It is a thin convenience layer over the I/O engine so
kernels and generated node programs read like the paper's pseudo-code
("Call I/O routine to read the ICLA of array A").
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.exceptions import RuntimeExecutionError
from repro.hpf.array_desc import ArrayDescriptor
from repro.runtime.icla import InCoreLocalArray
from repro.runtime.io_engine import IOEngine
from repro.runtime.laf import LocalArrayFile
from repro.runtime.slab import Slab, SlabbingStrategy, make_slabs

__all__ = ["OutOfCoreLocalArray"]


class OutOfCoreLocalArray:
    """One processor's out-of-core local array."""

    def __init__(
        self,
        descriptor: ArrayDescriptor,
        rank: int,
        laf: LocalArrayFile,
        engine: IOEngine,
        icla: Optional[InCoreLocalArray] = None,
    ):
        self.descriptor = descriptor
        self.rank = int(rank)
        self.laf = laf
        self.engine = engine
        self.icla = icla
        expected = descriptor.local_shape(rank)
        if tuple(laf.shape) != tuple(expected):
            raise RuntimeExecutionError(
                f"LAF shape {laf.shape} does not match local shape {expected} of "
                f"array {descriptor.name!r} on rank {rank}"
            )

    # ------------------------------------------------------------------
    @property
    def local_shape(self):
        return self.laf.shape

    @property
    def dtype(self) -> np.dtype:
        return self.laf.dtype

    def slabs(self, strategy: SlabbingStrategy | str, slab_elements: int) -> List[Slab]:
        """Partition this local array into slabs of at most ``slab_elements`` elements."""
        return make_slabs(self.local_shape, strategy, slab_elements)

    # ------------------------------------------------------------------
    # staged access
    # ------------------------------------------------------------------
    def fetch_slab(self, slab: Slab) -> Optional[np.ndarray]:
        """Read a slab through the I/O engine, using the ICLA as a reuse buffer."""
        if self.icla is not None and self.icla.holds(slab):
            return self.icla.get(slab)
        data = self.engine.read_slab(self.rank, self.laf, slab)
        if self.icla is not None and data is not None:
            self.icla.load(slab, data)
        return data

    def charge_fetch(self, slab: Slab) -> None:
        """Charge a slab re-read served from a copy the kernel already holds.

        The machine pays exactly what :meth:`fetch_slab` would charge; no
        file access happens.  This keeps the simulated cost of re-streaming
        identical while the fast-path kernels skip redundant host I/O.  In
        particular a slab the ICLA holds is free here too, since
        :meth:`fetch_slab` would have served it from the reuse buffer.
        """
        if self.icla is not None and self.icla.holds(slab):
            self.icla.hits += 1
            return
        self.engine.charge_read_slab(self.rank, self.laf, slab)

    def store_slab(self, slab: Slab, data: Optional[np.ndarray]) -> None:
        """Write a slab through the I/O engine and invalidate any stale ICLA copy."""
        self.engine.write_slab(self.rank, self.laf, slab, data)
        if self.icla is not None and self.icla.current_slab == slab and data is not None:
            self.icla.load(slab, data)

    def fetch_all(self) -> Optional[np.ndarray]:
        """Read the whole local array in one request (in-core baseline)."""
        return self.engine.read_full(self.rank, self.laf)

    def store_all(self, data: Optional[np.ndarray]) -> None:
        """Write the whole local array in one request (in-core baseline)."""
        self.engine.write_full(self.rank, self.laf, data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"OutOfCoreLocalArray({self.descriptor.name!r}, rank={self.rank}, "
            f"shape={self.local_shape})"
        )
