"""Initial redistribution of out-of-core data.

Section 2.3 of the paper: the way data first arrives on disk (from archival
storage, a satellite feed or the network) usually does not conform to the
distribution the program declares, so before the computation starts the data
must be *redistributed* — read from disk in its arrival layout, exchanged
between processors, and written into each processor's Local Array File.  The
cost is amortised when the array is reused across many iterations.

The arrival layout modelled here is the common one for archival data: the
global array striped **row-wise** across the processors' disks in arrival
order (processor ``p`` holds rows ``p*N/P .. (p+1)*N/P - 1`` of the global
array, row-major).  :func:`redistribute_to_descriptor` converts that layout
into the block distribution demanded by an :class:`ArrayDescriptor`,
charging reads of the arrival files, an all-to-all exchange and writes of the
Local Array Files.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import RuntimeExecutionError
from repro.hpf.array_desc import ArrayDescriptor
from repro.hpf.distribution import BlockDistribution
from repro.runtime.vm import OutOfCoreArray, VirtualMachine

__all__ = ["arrival_layout_rows", "redistribute_to_descriptor", "redistribution_cost"]


def arrival_layout_rows(nrows: int, nprocs: int) -> BlockDistribution:
    """The arrival-order striping of global rows across processors."""
    return BlockDistribution(nrows, nprocs)


def redistribution_cost(descriptor: ArrayDescriptor) -> dict:
    """Analytic cost of redistributing one array (per-processor counts).

    Every processor reads its arrival stripe once, exchanges the parts that
    belong elsewhere (modelled as an all-to-all of the stripe), and writes its
    local array file once.
    """
    nprocs = descriptor.nprocs
    stripe_bytes = descriptor.nbytes // nprocs if nprocs else 0
    local_bytes = max(descriptor.local_nbytes(r) for r in range(nprocs))
    return {
        "read_bytes_per_proc": stripe_bytes,
        "read_requests_per_proc": 1,
        "alltoall_bytes_per_pair": stripe_bytes // max(nprocs, 1),
        "write_bytes_per_proc": local_bytes,
        "write_requests_per_proc": 1,
    }


def redistribute_to_descriptor(
    vm: VirtualMachine,
    descriptor: ArrayDescriptor,
    arrival_data: Optional[np.ndarray] = None,
    storage_order: str = "F",
    icla_elements: Optional[int] = None,
) -> OutOfCoreArray:
    """Create an out-of-core array from data in arrival (row-striped) layout.

    In ``EXECUTE`` mode ``arrival_data`` must be the dense global array; the
    function charges the redistribution traffic and then materialises the
    correctly distributed Local Array Files.  In ``ESTIMATE`` mode only the
    costs are charged.
    """
    if vm.perform_io and arrival_data is None:
        raise RuntimeExecutionError("redistribution needs the arrival data in EXECUTE mode")
    costs = redistribution_cost(descriptor)
    # 1. read the arrival stripes
    for rank in range(vm.nprocs):
        vm.machine.charge_read(rank, costs["read_bytes_per_proc"], costs["read_requests_per_proc"])
    # 2. exchange the pieces that belong to other processors
    vm.machine.charge_all_to_all(costs["alltoall_bytes_per_pair"])
    # 3. write the local array files in the program's distribution
    array = vm.create_array(
        descriptor,
        initial=arrival_data,
        storage_order=storage_order,
        icla_elements=icla_elements,
        charge_initial_write=False,
    )
    for rank in range(vm.nprocs):
        vm.machine.charge_write(
            rank, costs["write_bytes_per_proc"], costs["write_requests_per_proc"]
        )
    return array
