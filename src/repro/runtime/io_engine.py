"""The accounting I/O engine.

All slab traffic between Local Array Files and In-core Local Arrays goes
through an :class:`IOEngine`, which performs the actual file access (in
``EXECUTE`` mode) and charges the simulated machine for it.

Two accounting policies are provided:

``IOAccounting.PER_SLAB``
    One I/O request per slab read or written — the convention of the paper's
    cost model, valid when the on-disk storage order has been reorganized to
    match the slabbing so a slab is one contiguous extent (or when the file
    system offers strided/section read calls, as PASSION's runtime did).

``IOAccounting.PER_CHUNK``
    One I/O request per *contiguous file extent* touched — what a naive
    runtime doing one ``read()`` per partial column/row would pay.  Used by
    the ablation experiments to show why storage reorganization matters.
"""

from __future__ import annotations

import enum
import time
from typing import Callable, Optional

import numpy as np

from repro.exceptions import IOEngineError, TransientIOError
from repro.machine.cluster import Machine
from repro.runtime.laf import LocalArrayFile
from repro.runtime.slab import Slab

__all__ = ["IOAccounting", "IOEngine"]


class IOAccounting(enum.Enum):
    """How I/O requests are counted for a slab access."""

    PER_SLAB = "per-slab"
    PER_CHUNK = "per-chunk"

    @classmethod
    def from_name(cls, name: "IOAccounting | str") -> "IOAccounting":
        if isinstance(name, IOAccounting):
            return name
        key = str(name).strip().lower()
        for member in cls:
            if member.value == key or member.name.lower() == key:
                return member
        raise IOEngineError(f"unknown I/O accounting policy {name!r}")


class IOEngine:
    """Moves slabs between Local Array Files and memory, charging the machine.

    Parameters
    ----------
    machine:
        The simulated machine to charge.
    accounting:
        Request-counting policy (see :class:`IOAccounting`).
    perform_io:
        When false (``ESTIMATE`` mode) no file is touched; only costs are
        charged and ``read_slab`` returns ``None``.
    prefetch:
        Optional :class:`~repro.runtime.prefetch.PrefetchPolicy`.  When set,
        read charges route through the policy so part of the read time can
        hide behind preceding computation; counters always see the full
        traffic, only the simulated clock benefits.  ``None`` (the default)
        keeps the exact direct-charge path.
    injector:
        Optional :class:`~repro.resilience.faults.FaultInjector` consulted
        before each host file access (and after writes, for corruption).
    stats:
        Optional :class:`~repro.resilience.faults.ResilienceStats` recording
        retries.  Defaults to the injector's stats when one is given.
    retries / retry_backoff_s:
        Bounded-retry budget for transient failures of a single file
        operation and the base of the exponential host-side backoff between
        attempts.  Charging is untouched by retries: every logical access is
        charged exactly once, *before* the first attempt.
    """

    def __init__(
        self,
        machine: Machine,
        accounting: IOAccounting | str = IOAccounting.PER_SLAB,
        perform_io: bool = True,
        prefetch=None,
        *,
        injector=None,
        stats=None,
        retries: int = 4,
        retry_backoff_s: float = 0.001,
    ):
        self.machine = machine
        self.accounting = IOAccounting.from_name(accounting)
        self.perform_io = bool(perform_io)
        self.prefetch = prefetch
        self.injector = injector
        self.stats = stats if stats is not None else (
            injector.stats if injector is not None else None
        )
        self.retries = int(retries)
        self.retry_backoff_s = float(retry_backoff_s)

    # ------------------------------------------------------------------
    # resilient host-side file access
    # ------------------------------------------------------------------
    def _attempt(self, op: Callable, kind: str, laf: LocalArrayFile):
        """Run one host file operation with fault injection and bounded retry.

        Transient failures (injected or real ``OSError``) are retried up to
        ``self.retries`` times with exponential backoff; exhaustion surfaces
        as a plain :class:`IOEngineError`.  Checksum mismatches
        (:class:`~repro.exceptions.SlabCorruptionError`) are *not* retried —
        re-reading corrupt bytes returns the same corrupt bytes; recovery
        belongs to the executor.
        """
        site = laf.label
        failures = 0
        while True:
            try:
                if self.injector is not None:
                    if kind == "read":
                        self.injector.before_read(site)
                    else:
                        self.injector.before_write(site)
                return op()
            except (TransientIOError, OSError) as exc:
                failures += 1
                if failures > self.retries:
                    raise IOEngineError(
                        f"{kind} of local array file {site} still failing "
                        f"after {self.retries} retries: {exc}"
                    ) from exc
                if self.stats is not None:
                    self.stats.retries += 1
                if self.retry_backoff_s:
                    time.sleep(self.retry_backoff_s * (2 ** (failures - 1)))

    def _maybe_corrupt(self, laf: LocalArrayFile, slab: Slab) -> None:
        """After a successful write, let the injector damage the bytes on disk."""
        if self.injector is None or not self.perform_io:
            return
        mode = self.injector.corrupt_write(laf.label)
        if mode is not None:
            laf._inject_corruption(slab, mode)

    @staticmethod
    def _full_slab(laf: LocalArrayFile) -> Slab:
        return Slab(index=0, row_start=0, row_stop=laf.shape[0],
                    col_start=0, col_stop=laf.shape[1])

    def _charge_read(self, rank: int, nbytes: int, nrequests: int) -> None:
        if self.prefetch is not None:
            self.prefetch.charge_read(self.machine, rank, nbytes, nrequests)
        else:
            self.machine.charge_read(rank, nbytes, nrequests)

    # ------------------------------------------------------------------
    def _request_count(self, laf: LocalArrayFile, slab: Slab) -> int:
        if slab.nelements == 0:
            return 0
        if self.accounting is IOAccounting.PER_SLAB:
            return 1
        return laf.contiguous_chunks(slab)

    def charge_read_slab(self, rank: int, laf: LocalArrayFile, slab: Slab) -> None:
        """Charge the machine as if ``slab`` were read, without moving data.

        Used by kernels that re-stream a slab they already hold in memory
        (e.g. the column-slab GAXPY re-fetching the streamed array for every
        result column): the simulated machine pays the full re-read — request
        counts still derived from :meth:`LocalArrayFile.contiguous_chunks` —
        while the host skips the redundant file access.
        """
        nrequests = self._request_count(laf, slab)
        nbytes = slab.nbytes(laf.dtype.itemsize)
        self._charge_read(rank, nbytes, nrequests)

    def read_slab(self, rank: int, laf: LocalArrayFile, slab: Slab) -> Optional[np.ndarray]:
        """Read ``slab`` of processor ``rank``'s LAF; charge and return the data."""
        self.charge_read_slab(rank, laf, slab)
        if not self.perform_io:
            return None
        return self._attempt(lambda: laf.read_slab(slab), "read", laf)

    def write_slab(
        self, rank: int, laf: LocalArrayFile, slab: Slab, data: Optional[np.ndarray]
    ) -> None:
        """Write ``slab`` of processor ``rank``'s LAF; charge the machine."""
        nrequests = self._request_count(laf, slab)
        nbytes = slab.nbytes(laf.dtype.itemsize)
        self.machine.charge_write(rank, nbytes, nrequests)
        if not self.perform_io:
            return
        if data is None:
            raise IOEngineError("write_slab needs data when perform_io is enabled")
        self._attempt(lambda: laf.write_slab(slab, data), "write", laf)
        self._maybe_corrupt(laf, slab)

    def read_full(self, rank: int, laf: LocalArrayFile) -> Optional[np.ndarray]:
        """Read an entire LAF as one request (used by the in-core baseline)."""
        nbytes = laf.nbytes
        self._charge_read(rank, nbytes, 1 if nbytes else 0)
        if not self.perform_io:
            return None
        return self._attempt(laf.read_full, "read", laf)

    def write_full(self, rank: int, laf: LocalArrayFile, data: Optional[np.ndarray]) -> None:
        """Write an entire LAF as one request (used by the in-core baseline)."""
        nbytes = laf.nbytes
        self.machine.charge_write(rank, nbytes, 1 if nbytes else 0)
        if not self.perform_io:
            return
        if data is None:
            raise IOEngineError("write_full needs data when perform_io is enabled")
        self._attempt(lambda: laf.write_full(data), "write", laf)
        self._maybe_corrupt(laf, self._full_slab(laf))
