"""The virtual machine: simulated processors + their Local Array Files.

A :class:`VirtualMachine` owns

* a :class:`~repro.machine.cluster.Machine` (cost model, clocks, counters),
* a :class:`~repro.runtime.io_engine.IOEngine` bound to the run's execution
  mode, and
* the out-of-core arrays created for a program run, each realised as one
  Local Array File per processor.

It is the object kernels and the executor talk to; experiment harnesses
create one per configuration point.
"""

from __future__ import annotations

import contextlib
import copy
import os
import shutil
import uuid
from pathlib import Path
from typing import Dict, Iterator, Optional

import numpy as np

from repro.config import ExecutionMode, RunConfig, default_config
from repro.exceptions import RuntimeExecutionError
from repro.hpf.array_desc import ArrayDescriptor
from repro.machine.cluster import Machine
from repro.machine.parameters import MachineParameters
from repro.resilience.checksums import SlabManifest
from repro.resilience.faults import FaultInjector, ResilienceStats
from repro.resilience.journal import CheckpointJournal
from repro.resilience.reaper import write_owner_file
from repro.runtime.comm import CommBackend, SimulatedComm
from repro.runtime.icla import InCoreLocalArray
from repro.runtime.io_engine import IOAccounting, IOEngine
from repro.runtime.laf import LafHandleCache, LocalArrayFile
from repro.runtime.ocla import OutOfCoreLocalArray
from repro.runtime.prefetch import OverlapPrefetch, PrefetchPolicy

__all__ = ["OutOfCoreArray", "VirtualMachine"]


class OutOfCoreArray:
    """A distributed out-of-core array: one OCLA (and LAF) per processor."""

    def __init__(self, descriptor: ArrayDescriptor, locals_: Dict[int, OutOfCoreLocalArray]):
        self.descriptor = descriptor
        self.locals = locals_

    @property
    def name(self) -> str:
        return self.descriptor.name

    @property
    def nprocs(self) -> int:
        return self.descriptor.nprocs

    def local(self, rank: int) -> OutOfCoreLocalArray:
        try:
            return self.locals[rank]
        except KeyError as exc:
            raise RuntimeExecutionError(
                f"array {self.name!r} has no local part on rank {rank}"
            ) from exc

    def __getitem__(self, rank: int) -> OutOfCoreLocalArray:
        return self.local(rank)

    def __iter__(self):
        return iter(self.locals.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OutOfCoreArray({self.descriptor.describe()})"


class VirtualMachine:
    """Simulated machine plus the on-disk state of one program run."""

    def __init__(
        self,
        nprocs: int,
        params: MachineParameters | str | None = None,
        config: Optional[RunConfig] = None,
        accounting: IOAccounting | str = IOAccounting.PER_SLAB,
        max_open_handles: int = 128,
        work_dir: str | os.PathLike | None = None,
        rank: Optional[int] = None,
        comm: Optional[CommBackend] = None,
    ):
        self.config = config or default_config()
        self.machine = Machine(nprocs, params)
        self.perform_io = self.config.mode is ExecutionMode.EXECUTE
        # SPMD identity: a simulated VM owns every rank (rank=None); a rank
        # worker of the distributed backend owns exactly one.  Engines loop
        # their per-rank work over ``vm.ranks`` and reach collectives through
        # ``vm.comm``, so one code path serves both styles.
        if rank is not None and not 0 <= rank < self.machine.nprocs:
            raise RuntimeExecutionError(
                f"rank {rank} outside machine of {self.machine.nprocs} processors"
            )
        self.rank: Optional[int] = rank
        self.ranks: tuple = tuple(range(self.machine.nprocs)) if rank is None else (rank,)
        self.comm: CommBackend = comm if comm is not None else SimulatedComm()
        self.comm.bind(self.machine)
        # Prefetch policy: None keeps the exact direct-charge path (the
        # paper's measured configuration); "overlap" hides slab reads behind
        # preceding computation without touching any I/O counter.
        self.prefetch_policy: Optional[PrefetchPolicy] = (
            OverlapPrefetch(efficiency=self.config.prefetch_efficiency)
            if getattr(self.config, "prefetch", "none") == "overlap"
            else None
        )
        # Resilience: host-side counters, and (EXECUTE only) the optional
        # seeded fault injector.  Neither touches any charged statistic.
        self.resilience = ResilienceStats()
        self.fault_injector: Optional[FaultInjector] = (
            FaultInjector(self.config.fault_policy, self.resilience)
            if self.perform_io and self.config.fault_policy is not None
            else None
        )
        self.engine = IOEngine(
            self.machine,
            accounting=accounting,
            perform_io=self.perform_io,
            prefetch=self.prefetch_policy,
            injector=self.fault_injector,
            stats=self.resilience,
            retries=self.config.io_retries,
            retry_backoff_s=self.config.io_retry_backoff_s,
        )
        self.arrays: Dict[str, OutOfCoreArray] = {}
        # Opt-in switch for cross-statement array reuse (see array_reuse()):
        # off by default so independent runs on one VM keep the historical
        # duplicate-array guard instead of silently reading stale LAF data.
        self.allow_array_reuse = False
        # Bounds how many persistent LAF memmap handles stay open at once so
        # runs with hundreds of LAFs cannot exhaust file descriptors.
        self.handle_cache = LafHandleCache(capacity=max_open_handles)
        self._scratch: Optional[Path] = None
        self.journal: Optional[CheckpointJournal] = None
        if self.perform_io:
            if work_dir is not None:
                # An explicit working directory: checkpoint/resume reopens
                # the scratch dir (and journal) of an earlier, killed run.
                self._scratch = Path(work_dir)
            else:
                base = self.config.ensure_scratch_dir()
                self._scratch = Path(base) / f"vm_{uuid.uuid4().hex[:12]}"
            self._scratch.mkdir(parents=True, exist_ok=True)
            # Liveness marker for the scratch reaper: a vm_* directory whose
            # owning pid is still alive is never reaped, however stale its
            # content mtimes look (long computations write nothing for hours).
            write_owner_file(self._scratch)
            self.journal = CheckpointJournal(self._scratch / "journal.json")

    # ------------------------------------------------------------------
    @property
    def nprocs(self) -> int:
        return self.machine.nprocs

    @property
    def work_dir(self) -> Optional[Path]:
        """The scratch directory holding this VM's LAFs and journal."""
        return self._scratch

    @property
    def memory_per_node(self) -> int:
        return self.machine.memory_per_node

    # ------------------------------------------------------------------
    # array management
    # ------------------------------------------------------------------
    def create_array(
        self,
        descriptor: ArrayDescriptor,
        initial: Optional[np.ndarray] = None,
        storage_order: str = "F",
        icla_elements: Optional[int] = None,
        charge_initial_write: bool = False,
    ) -> OutOfCoreArray:
        """Create the Local Array Files of a distributed out-of-core array.

        Parameters
        ----------
        descriptor:
            The array's HPF descriptor (shape, alignment, distribution).
        initial:
            Optional dense global array used to initialise the LAFs (scattered
            according to the distribution).  Required for input arrays in
            ``EXECUTE`` mode, ignored in ``ESTIMATE`` mode.
        storage_order:
            On-disk element order of every LAF (``'F'`` or ``'C'``); the
            compiler picks this to match the slabbing it selected.
        icla_elements:
            Capacity of the reuse buffer attached to each OCLA (optional).
        charge_initial_write:
            When true the initial scatter is charged to the machine (used when
            an experiment wants to include the initial data staging cost).
        """
        if descriptor.name in self.arrays:
            raise RuntimeExecutionError(f"array {descriptor.name!r} already exists in this VM")
        if descriptor.ndim != 2:
            raise RuntimeExecutionError(
                f"the out-of-core runtime stores two-dimensional arrays; "
                f"{descriptor.name!r} has {descriptor.ndim} dimensions"
            )
        locals_: Dict[int, OutOfCoreLocalArray] = {}
        scattered: Optional[Dict[int, np.ndarray]] = None
        if self.perform_io and initial is not None:
            scattered = descriptor.scatter(initial)
        # A rank worker creates (and charges) only its own local part; the
        # scatter above is deterministic, so every worker slices the same
        # dense data identically to the simulator's scatter.
        owned = (
            tuple(range(descriptor.nprocs)) if self.rank is None else (self.rank,)
        )
        for rank in owned:
            local_shape = descriptor.local_shape(rank)
            if self.perform_io:
                path = LocalArrayFile.scratch_path(self._scratch, descriptor.name, rank)
                manifest = (
                    SlabManifest(Path(str(path) + ".sums.json"))
                    if self.config.checksums
                    else None
                )
                laf = LocalArrayFile(
                    path,
                    local_shape,
                    descriptor.dtype,
                    order=storage_order,
                    handle_cache=self.handle_cache,
                    array_name=descriptor.name,
                    rank=rank,
                    manifest=manifest,
                )
                if scattered is not None:
                    laf.write_full(scattered[rank])
            else:
                laf = LocalArrayFile(
                    Path("/nonexistent") / f"{descriptor.name}_{rank}.dat",
                    local_shape,
                    descriptor.dtype,
                    order=storage_order,
                    create=False,
                )
            icla = (
                InCoreLocalArray(icla_elements, descriptor.dtype)
                if icla_elements is not None
                else None
            )
            locals_[rank] = OutOfCoreLocalArray(descriptor, rank, laf, self.engine, icla)
            if charge_initial_write:
                self.machine.charge_write(rank, descriptor.local_nbytes(rank), 1)
        array = OutOfCoreArray(descriptor, locals_)
        self.arrays[descriptor.name] = array
        return array

    @contextlib.contextmanager
    def array_reuse(self) -> Iterator["VirtualMachine"]:
        """Allow :meth:`ensure_array` to resolve to existing arrays.

        Scoped opt-in used by the whole-program executor: inside the context
        a statement consuming an intermediate finds the Local Array Files its
        producer wrote and reads them directly.  Outside it, ``ensure_array``
        behaves exactly like :meth:`create_array` — a duplicate name raises —
        so independent runs on one VM cannot silently read stale data.
        """
        previous = self.allow_array_reuse
        self.allow_array_reuse = True
        try:
            yield self
        finally:
            self.allow_array_reuse = previous

    def ensure_array(
        self,
        descriptor: ArrayDescriptor,
        initial: Optional[np.ndarray] = None,
        storage_order: str = "F",
        icla_elements: Optional[int] = None,
        charge_initial_write: bool = False,
    ) -> OutOfCoreArray:
        """Create the array, or — inside :meth:`array_reuse` — return the existing one.

        The reuse path of whole-program execution: a statement consuming an
        intermediate finds the Local Array Files its producer wrote and reads
        them directly (``initial`` and ``storage_order`` are ignored then — the
        data and on-disk layout are whatever the producer left behind), so the
        intermediate is never scattered or regenerated.  A shape or dtype
        mismatch with the existing array is an error, as is an existing array
        outside an :meth:`array_reuse` scope (matching ``create_array``).
        """
        existing = self.arrays.get(descriptor.name)
        if existing is None or not self.allow_array_reuse:
            return self.create_array(
                descriptor,
                initial=initial,
                storage_order=storage_order,
                icla_elements=icla_elements,
                charge_initial_write=charge_initial_write,
            )
        held = existing.descriptor
        if held.shape != descriptor.shape or str(held.dtype) != str(descriptor.dtype):
            raise RuntimeExecutionError(
                f"array {descriptor.name!r} already exists with shape {held.shape} "
                f"dtype {held.dtype}, which does not match the requested shape "
                f"{descriptor.shape} dtype {descriptor.dtype}"
            )
        return existing

    def get_array(self, name: str) -> OutOfCoreArray:
        try:
            return self.arrays[name]
        except KeyError as exc:
            raise RuntimeExecutionError(f"unknown out-of-core array {name!r}") from exc

    def to_dense(self, array: OutOfCoreArray | str) -> np.ndarray:
        """Gather an out-of-core array back into a dense global array.

        Used for verification only; not charged to the machine.
        """
        if isinstance(array, str):
            array = self.get_array(array)
        if not self.perform_io:
            raise RuntimeExecutionError("to_dense is only available in EXECUTE mode")
        if self.rank is not None:
            raise RuntimeExecutionError(
                "to_dense needs every rank's local part; a rank worker owns "
                "only its own — the distributed backend gathers results in "
                "the parent process instead"
            )
        locals_ = {rank: ocla.laf.read_full() for rank, ocla in array.locals.items()}
        return array.descriptor.gather(locals_)

    # ------------------------------------------------------------------
    # charging helpers
    # ------------------------------------------------------------------
    def charge_compute(self, rank: int, flops: float) -> float:
        """Charge ``rank`` for ``flops`` and feed the prefetch overlap window.

        Identical to ``machine.charge_compute`` when no prefetch policy is
        active; with ``prefetch="overlap"`` the computed seconds become the
        window subsequent slab reads may hide behind.
        """
        seconds = self.machine.charge_compute(rank, flops)
        if self.prefetch_policy is not None:
            self.prefetch_policy.begin_compute(rank, seconds)
        return seconds

    # ------------------------------------------------------------------
    # charge snapshot/restore (charge-neutral fault recovery)
    # ------------------------------------------------------------------
    def snapshot_charges(self) -> dict:
        """Deep-copy every mutable charged quantity of the simulated machine.

        Recovery code brackets a re-execution with
        ``snap = vm.snapshot_charges()`` … ``vm.restore_charges(snap)`` so a
        regenerated statement charges the machine exactly once — faulted runs
        stay bit-identical to clean runs in every charged statistic.
        """
        state = {
            "processors": self.machine.processors,
            "disks": self.machine.disks,
            "network": self.machine.network,
            "clocks": self.machine.clocks,
            "metrics": self.machine.metrics,
        }
        if self.prefetch_policy is not None:
            state["prefetch_available"] = self.prefetch_policy._available
        return copy.deepcopy(state)

    def restore_charges(self, snapshot: dict) -> None:
        """Reset the simulated machine's charges to a snapshot (reusable)."""
        state = copy.deepcopy(snapshot)
        self.machine.processors = state["processors"]
        self.machine.disks = state["disks"]
        self.machine.network = state["network"]
        self.machine.clocks = state["clocks"]
        self.machine.metrics = state["metrics"]
        if self.prefetch_policy is not None:
            self.prefetch_policy._available = state.get("prefetch_available", {})

    # ------------------------------------------------------------------
    # reporting and lifecycle
    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        """Simulated wall-clock seconds of the run so far."""
        return self.machine.elapsed()

    def time_breakdown(self) -> Dict[str, float]:
        return self.machine.time_breakdown()

    def io_statistics(self) -> Dict[str, float]:
        return self.machine.io_statistics()

    def reset_costs(self) -> None:
        """Clear clocks and counters but keep arrays and files."""
        self.machine.reset()

    def cleanup(self) -> None:
        """Delete all Local Array Files (unless the config asks to keep them)."""
        for array in self.arrays.values():
            for ocla in array:
                if self.perform_io and not self.config.keep_files:
                    ocla.laf.delete()
                else:
                    ocla.laf.close()
        self.arrays.clear()
        if (
            self.perform_io
            and not self.config.keep_files
            and self._scratch is not None
            and self._scratch.exists()
        ):
            shutil.rmtree(self._scratch, ignore_errors=True)

    def __enter__(self) -> "VirtualMachine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.cleanup()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VirtualMachine(nprocs={self.nprocs}, mode={self.config.mode.value})"
