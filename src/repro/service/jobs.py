"""Job model of the compile-and-run service.

A *job* is one tenant's request to evaluate one or more
:class:`~repro.api.WorkloadPoint`\\ s (or a mini-HPF source program) through
the shared :class:`~repro.api.Session`.  The frozen :class:`JobSpec` is what
admission control reasons about — declared memory and scratch demand, the
execution mode, the tenant label — and the mutable :class:`Job` tracks the
lifecycle::

    QUEUED ──► ADMITTED ──► COMPILING ──► RUNNING ──► DONE
       │           │            │             │  ▲        └─► (FAILED)
       │           │            │             └──┘ next point
       └───────────┴────────────┴───────────► CANCELLED / FAILED

Job ids are monotonically increasing per service instance, so "job 7 was
submitted before job 9" always holds.  All mutable job state is confined to
the service's event loop; worker threads only ever run the blocking
Session calls and hand their results back to the loop.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.api.records import RunRecord
from repro.api.workload import WorkloadPoint
from repro.exceptions import ReproError

__all__ = [
    "ServiceError",
    "AdmissionRejected",
    "ServiceClosedError",
    "UnknownJobError",
    "JobState",
    "TERMINAL_STATES",
    "JobSpec",
    "Job",
    "job_counter",
    "point_from_json",
    "point_to_json",
    "spec_from_json",
    "spec_to_json",
]


# ---------------------------------------------------------------------------
# exceptions
# ---------------------------------------------------------------------------
class ServiceError(ReproError):
    """Base class of job-service failures (bad specs, illegal transitions)."""


class AdmissionRejected(ServiceError):
    """The job cannot be accepted at all (queue full, or a demand that
    exceeds the whole cap and could never be admitted).  Maps to HTTP 429."""


class ServiceClosedError(ServiceError):
    """The service is draining or closed and accepts no new jobs (HTTP 503)."""


class UnknownJobError(ServiceError):
    """No job with the requested id exists (HTTP 404)."""


# ---------------------------------------------------------------------------
# lifecycle
# ---------------------------------------------------------------------------
class JobState(enum.Enum):
    QUEUED = "queued"
    ADMITTED = "admitted"
    COMPILING = "compiling"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
)

#: legal lifecycle transitions; RUNNING -> COMPILING is the next point of a
#: multi-point job.
_TRANSITIONS: Dict[JobState, frozenset] = {
    JobState.QUEUED: frozenset({JobState.ADMITTED, JobState.CANCELLED}),
    JobState.ADMITTED: frozenset(
        {JobState.COMPILING, JobState.CANCELLED, JobState.FAILED}
    ),
    JobState.COMPILING: frozenset(
        {JobState.RUNNING, JobState.CANCELLED, JobState.FAILED}
    ),
    JobState.RUNNING: frozenset(
        {JobState.COMPILING, JobState.DONE, JobState.CANCELLED, JobState.FAILED}
    ),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
}


def job_counter(start: int = 1) -> Iterator[int]:
    """Monotonic job ids for one service instance."""
    return itertools.count(start)


# ---------------------------------------------------------------------------
# the frozen request
# ---------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One tenant's frozen request: what to run and what it will consume.

    Parameters
    ----------
    points:
        The workload points to evaluate, in order; one
        :class:`~repro.api.RunRecord` is produced (and streamed) per point.
    tenant:
        Free-form tenant label; metrics and admission counters are kept per
        tenant.
    mode:
        ``"execute"`` (default) or ``"estimate"``.
    verify:
        Optional override of the session's verify flag (EXECUTE mode only).
    memory_budget_bytes:
        The job's declared peak node-memory demand, counted against the
        service's aggregate in-flight memory cap while the job is admitted.
        Defaults to the largest ``memory_budget_bytes`` option found among
        the points (0 when none declares one).
    scratch_bytes:
        The job's declared peak scratch-disk demand, counted against the
        scratch quota alongside the *measured* bytes of every in-flight
        job's ``vm_*`` directories.
    timeout_s:
        Optional per-job wall-clock budget; a job that exceeds it fails with
        ``JobTimeout`` (its in-flight point finishes in the background
        before the scratch is reclaimed).
    """

    points: Tuple[WorkloadPoint, ...]
    tenant: str = "default"
    mode: str = "execute"
    verify: Optional[bool] = None
    memory_budget_bytes: int = 0
    scratch_bytes: int = 0
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "points", tuple(self.points))
        if not self.points:
            raise ServiceError("a job needs at least one workload point")
        for point in self.points:
            if not isinstance(point, WorkloadPoint):
                raise ServiceError(
                    f"job points must be WorkloadPoint instances, got {type(point).__name__}"
                )
        if not self.tenant or not isinstance(self.tenant, str):
            raise ServiceError(f"tenant must be a non-empty string, got {self.tenant!r}")
        if self.mode not in ("execute", "estimate"):
            raise ServiceError(
                f"mode must be 'execute' or 'estimate', got {self.mode!r}"
            )
        if self.memory_budget_bytes < 0:
            raise ServiceError(
                f"memory_budget_bytes must be non-negative, got {self.memory_budget_bytes}"
            )
        if self.scratch_bytes < 0:
            raise ServiceError(
                f"scratch_bytes must be non-negative, got {self.scratch_bytes}"
            )
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ServiceError(f"timeout_s must be positive, got {self.timeout_s}")


# ---------------------------------------------------------------------------
# the mutable job
# ---------------------------------------------------------------------------
class Job:
    """Runtime state of one submitted job (event-loop confined).

    ``condition`` guards record appends and state changes so streaming
    readers can wait for "a new record, or the job turned terminal" without
    polling.  Workers never mutate a job from their threads — every change
    happens on the service loop.
    """

    def __init__(self, job_id: int, spec: JobSpec, scratch_dir: Path):
        import asyncio

        self.id = int(job_id)
        self.spec = spec
        self.scratch_dir = Path(scratch_dir)
        self.state = JobState.QUEUED
        self.records: List[RunRecord] = []
        self.error: Optional[str] = None
        self.cancel_requested = False
        self.condition = asyncio.Condition()

    # ------------------------------------------------------------------
    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def advance(self, state: JobState) -> None:
        """Move to ``state``, enforcing the lifecycle diagram."""
        if state not in _TRANSITIONS[self.state]:
            raise ServiceError(
                f"job {self.id}: illegal transition "
                f"{self.state.value} -> {state.value}"
            )
        self.state = state

    def snapshot(self) -> Dict[str, object]:
        """JSON summary for ``GET /jobs/{id}`` (records ship separately)."""
        return {
            "id": self.id,
            "tenant": self.spec.tenant,
            "state": self.state.value,
            "mode": self.spec.mode,
            "points": len(self.spec.points),
            "records": len(self.records),
            "memory_budget_bytes": self.spec.memory_budget_bytes,
            "scratch_bytes": self.spec.scratch_bytes,
            "cancel_requested": self.cancel_requested,
            "error": self.error,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Job(id={self.id}, tenant={self.spec.tenant!r}, state={self.state.value})"


# ---------------------------------------------------------------------------
# wire format
# ---------------------------------------------------------------------------
_POINT_FIELDS = (
    "workload", "n", "nprocs", "version", "slab_ratio", "slab_elements",
    "dtype", "options", "optimize",
)
_SPEC_FIELDS = (
    "points", "source", "tenant", "mode", "verify", "memory_budget_bytes",
    "scratch_bytes", "timeout_s",
)


def point_from_json(data: Mapping[str, object]) -> WorkloadPoint:
    """Build a :class:`WorkloadPoint` from one JSON object (strict fields)."""
    if not isinstance(data, Mapping):
        raise ServiceError(f"a point must be a JSON object, got {type(data).__name__}")
    unknown = set(data) - set(_POINT_FIELDS)
    if unknown:
        raise ServiceError(
            f"unknown point fields {sorted(unknown)} (accepted: {list(_POINT_FIELDS)})"
        )
    if "workload" not in data:
        raise ServiceError("a point needs a 'workload' name")
    kwargs = dict(data)
    options = kwargs.get("options")
    if options is not None and not isinstance(options, Mapping):
        raise ServiceError("point 'options' must be a JSON object")
    try:
        return WorkloadPoint(**kwargs)
    except TypeError as exc:
        raise ServiceError(f"invalid point: {exc}") from exc


def point_to_json(point: WorkloadPoint) -> Dict[str, object]:
    """Encode a point for submission (inverse of :func:`point_from_json`)."""
    return {
        "workload": point.workload,
        "n": point.n,
        "nprocs": point.nprocs,
        "version": point.version,
        "slab_ratio": point.slab_ratio,
        "slab_elements": point.slab_elements_dict(),
        "dtype": point.dtype,
        "options": point.options_dict(),
        "optimize": point.optimize,
    }


def _default_memory_budget(points: Tuple[WorkloadPoint, ...]) -> int:
    """Largest per-point declared budget — the admission default."""
    budgets = [0]
    for point in points:
        declared = point.option("memory_budget_bytes")
        if declared is not None:
            budgets.append(int(declared))
    return max(budgets)


def spec_from_json(data: Mapping[str, object]) -> JobSpec:
    """Build a :class:`JobSpec` from a ``POST /jobs`` body.

    Two shapes are accepted: ``{"points": [{...}, ...]}`` with explicit
    workload points, or the ``{"source": "...", ...}`` shorthand that wraps
    one mini-HPF program.  The shorthand compiles the program under the
    job's declared ``memory_budget_bytes`` (the HPF workload requires a
    slab specification or budget — pass explicit points for finer control).
    Unknown fields are rejected so a typo'd quota never silently becomes
    "unlimited".
    """
    if not isinstance(data, Mapping):
        raise ServiceError("the job body must be a JSON object")
    unknown = set(data) - set(_SPEC_FIELDS)
    if unknown:
        raise ServiceError(
            f"unknown job fields {sorted(unknown)} (accepted: {list(_SPEC_FIELDS)})"
        )
    raw_points = data.get("points")
    source = data.get("source")
    if (raw_points is None) == (source is None):
        raise ServiceError("a job needs exactly one of 'points' or 'source'")
    if source is not None:
        if not isinstance(source, str) or not source.strip():
            raise ServiceError("'source' must be a non-empty HPF program string")
        options: Dict[str, object] = {"source": source}
        declared = data.get("memory_budget_bytes")
        if declared:
            # the job's admission budget doubles as the compile budget
            options["memory_budget_bytes"] = int(declared)
        points: Tuple[WorkloadPoint, ...] = (WorkloadPoint("hpf", options=options),)
    else:
        if not isinstance(raw_points, (list, tuple)) or not raw_points:
            raise ServiceError("'points' must be a non-empty JSON array")
        points = tuple(point_from_json(p) for p in raw_points)
    memory = data.get("memory_budget_bytes")
    if memory is None:
        memory = _default_memory_budget(points)
    try:
        return JobSpec(
            points=points,
            tenant=str(data.get("tenant", "default")),
            mode=str(data.get("mode", "execute")),
            verify=data.get("verify"),
            memory_budget_bytes=int(memory),
            scratch_bytes=int(data.get("scratch_bytes", 0)),
            timeout_s=(
                float(data["timeout_s"]) if data.get("timeout_s") is not None else None
            ),
        )
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"invalid job spec: {exc}") from exc


def spec_to_json(spec: JobSpec) -> Dict[str, object]:
    """Encode a spec for submission (used by the blocking client)."""
    return {
        "points": [point_to_json(p) for p in spec.points],
        "tenant": spec.tenant,
        "mode": spec.mode,
        "verify": spec.verify,
        "memory_budget_bytes": spec.memory_budget_bytes,
        "scratch_bytes": spec.scratch_bytes,
        "timeout_s": spec.timeout_s,
    }
