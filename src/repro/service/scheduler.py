"""The job scheduler: FIFO queue + bounded worker pool over one Session.

:class:`JobService` is the core of the compile-and-run server; the HTTP
layer (:mod:`repro.service.server`) is a thin codec over it.  Design points:

* **One shared compile path.**  Every tenant's points compile through one
  :class:`~repro.api.Session` per backend, all sessions sharing one
  :class:`~repro.planner.plan_cache.PlanCache` (and the process-wide compile
  LRU below the session layer), so the expensive strip-mining / cost-model /
  plan-search work is paid once per distinct program across *all* tenants —
  the paper's up-front compilation cost amortized across millions of
  requests.
* **Blocking work off the loop.**  ``Session.compile`` and ``Session.run``
  are blocking; workers run them in threads (``asyncio.to_thread``).  The
  heavy parts — BLAS kernels and file I/O — release the GIL, so a pool of
  workers really overlaps jobs.  ``EXECUTE`` jobs may also route to the
  multi-process backend (``backend="processes"``), one OS process per rank.
* **Loop-confined state.**  Job state, the queue and the admission gauges
  are touched only from the event loop; worker threads just compute.
* **Per-job scratch.**  Every job gets its own UUID-suffixed scratch
  directory; its runs create their ``vm_*`` dirs inside it, admission
  measures it against the disk quota, and it is reclaimed the moment the
  job reaches a terminal state (even when a timed-out run is still
  finishing in a background thread — reclamation waits for the thread).
* **Cooperative cancellation.**  ``DELETE /jobs/{id}`` cancels a queued job
  immediately; a running job stops at the next point boundary (a blocking
  NumPy kernel cannot be interrupted mid-flight), keeps the records it
  already produced and reclaims its scratch.
"""

from __future__ import annotations

import asyncio
import collections
import contextlib
import shutil
import uuid
from pathlib import Path
from typing import Deque, Dict, List, Optional, Set

from repro.api.session import Session
from repro.api.workload import get_workload
from repro.planner.plan_cache import PlanCache
from repro.service.admission import AdmissionController, AdmissionPolicy
from repro.service.jobs import (
    Job,
    JobSpec,
    JobState,
    ServiceClosedError,
    ServiceError,
    UnknownJobError,
    job_counter,
)

__all__ = ["JobService"]


class _JobCancelled(Exception):
    """Internal signal: the job observed ``cancel_requested`` at a boundary."""


class _JobTimeout(Exception):
    """Internal signal: the job blew its deadline.

    Carries the still-running future (the blocking call cannot be
    interrupted mid-thread) so ``_finish`` can defer scratch reclamation
    until the thread actually lands.
    """

    def __init__(self, stray: Optional[asyncio.Future]):
        super().__init__("job deadline exceeded")
        self.stray = stray


class JobService:
    """Multi-tenant async job service over a shared :class:`Session`.

    Parameters
    ----------
    params / config:
        Forwarded to the sessions the service creates (machine model, run
        configuration: seed, prefetch, checksums ...).  The config's
        ``scratch_dir`` is only the *root*; every job runs under its own
        subdirectory.
    policy:
        The :class:`AdmissionPolicy` (memory cap, scratch quota, queue
        depth).  Default: unlimited resources, queue depth 64.
    workers:
        Concurrent jobs (each runs its points sequentially).
    backend:
        Default execution backend (``"simulated"`` | ``"processes"``).  A
        per-job route is not exposed; run two services for that.
    scratch_root:
        Directory holding the per-job scratch dirs.  Defaults to
        ``<config scratch_dir>/service``.
    plan_cache_dir / plan_cache:
        Persistent plan store shared by every tenant (and every backend
        session): pass a directory, or an existing
        :class:`~repro.planner.plan_cache.PlanCache`.
    default_timeout_s:
        Applied to jobs that do not set their own ``timeout_s``.
    """

    def __init__(
        self,
        *,
        params=None,
        config=None,
        policy: Optional[AdmissionPolicy] = None,
        workers: int = 2,
        backend: str = "simulated",
        scratch_root: Optional[Path | str] = None,
        plan_cache_dir: Optional[Path | str] = None,
        plan_cache: Optional[PlanCache] = None,
        optimize: str = "greedy",
        check: str = "warn",
        default_timeout_s: Optional[float] = None,
    ):
        if workers < 1:
            raise ServiceError(f"workers must be at least 1, got {workers}")
        self.plan_cache = (
            plan_cache if plan_cache is not None else PlanCache(plan_cache_dir)
        )
        self.session = Session(
            params=params,
            config=config,
            backend=backend,
            plan_cache=self.plan_cache,
            optimize=optimize,
            check=check,
        )
        root = (
            Path(scratch_root)
            if scratch_root is not None
            else self.session.config.scratch_dir / "service"
        )
        self.scratch_root = root
        self.admission = AdmissionController(policy or AdmissionPolicy())
        self.workers = workers
        self.default_timeout_s = default_timeout_s
        self._jobs: Dict[int, Job] = {}
        self._queue: Deque[Job] = collections.deque()
        self._ids = job_counter()
        self._running: Set[asyncio.Task] = set()
        self._strays: Set[asyncio.Future] = set()
        self._wake = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._accepting = False
        self._started = False
        self._dispatcher: Optional[asyncio.Task] = None
        self._tenants: Dict[str, collections.Counter] = {}
        self._records_produced = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Begin accepting and dispatching jobs (idempotent)."""
        if self._started:
            return
        self._started = True
        self._accepting = True
        self.scratch_root.mkdir(parents=True, exist_ok=True)
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def drain(self) -> None:
        """Stop accepting new jobs and wait for every in-flight one.

        Queued jobs still run — a drain is graceful, not a cancellation.
        """
        self._accepting = False
        await self._idle.wait()

    async def close(self, drain: bool = True) -> None:
        """Shut the service down.

        ``drain=True`` (the default) finishes queued and running jobs
        first; ``drain=False`` cancels queued jobs, flags running ones and
        still waits for their current point to land (a blocking kernel
        cannot be killed), so scratch is always reclaimed.  Either way the
        shared session is closed, which flushes the plan cache and
        reclaims any surviving scratch.
        """
        self._accepting = False
        if not drain:
            for job in list(self._jobs.values()):
                if not job.terminal:
                    await self.cancel(job.id)
        await self._idle.wait()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatcher
            self._dispatcher = None
        if self._strays:
            await asyncio.gather(*self._strays, return_exceptions=True)
        self.session.close()
        with contextlib.suppress(OSError):
            self.scratch_root.rmdir()  # only when empty — job dirs are gone

    # ------------------------------------------------------------------
    # submission / queries
    # ------------------------------------------------------------------
    async def submit(self, spec: JobSpec) -> Job:
        """Queue one job, subject to admission's hard-reject checks.

        Raises :class:`ServiceClosedError` when draining/closed,
        :class:`AdmissionRejected` when the queue is full or the declared
        demand exceeds a whole cap, and
        :class:`~repro.exceptions.WorkloadError` when a point names an
        unknown workload or violates its contract — all before the job
        exists, so rejected submissions never consume an id.
        """
        if not self._accepting:
            raise ServiceClosedError("the service is draining and accepts no new jobs")
        for point in spec.points:
            get_workload(point.workload).validate(point)
        self.admission.check_enqueue(len(self._queue), spec)
        job_id = next(self._ids)
        scratch = self.scratch_root / f"job-{job_id:06d}-{uuid.uuid4().hex[:8]}"
        scratch.mkdir(parents=True, exist_ok=True)
        job = Job(job_id, spec, scratch)
        self._jobs[job_id] = job
        self._queue.append(job)
        self._tenant_counter(spec.tenant)["submitted"] += 1
        self._idle.clear()
        self._wake.set()
        return job

    def get(self, job_id: int) -> Job:
        try:
            return self._jobs[int(job_id)]
        except (KeyError, ValueError, TypeError) as exc:
            raise UnknownJobError(f"no job with id {job_id!r}") from exc

    def jobs(self) -> List[Job]:
        """All known jobs, oldest first."""
        return [self._jobs[key] for key in sorted(self._jobs)]

    async def cancel(self, job_id: int) -> Job:
        """Request cancellation; queued jobs turn terminal immediately.

        Running jobs stop at their next point boundary; cancelling a
        terminal job is a no-op (the job is returned either way).
        """
        job = self.get(job_id)
        if job.terminal:
            return job
        job.cancel_requested = True
        if job.state is JobState.QUEUED:
            with contextlib.suppress(ValueError):
                self._queue.remove(job)
            await self._finish(job, JobState.CANCELLED)
        return job

    async def wait(self, job_id: int) -> Job:
        """Block until the job is terminal (test/CLI convenience)."""
        job = self.get(job_id)
        async with job.condition:
            while not job.terminal:
                await job.condition.wait()
        return job

    async def stream(self, job_id: int):
        """Yield ``{"index", "record"}`` events as records land, then the
        terminal ``{"state", "error", "records"}`` event.

        Records already produced are replayed first, so late subscribers
        see the full ordered sequence.
        """
        job = self.get(job_id)
        sent = 0
        while True:
            async with job.condition:
                while sent >= len(job.records) and not job.terminal:
                    await job.condition.wait()
                fresh = list(job.records[sent:])
                terminal = job.terminal
                state, error = job.state, job.error
            for record in fresh:
                yield {"index": sent, "record": record.to_json_dict()}
                sent += 1
            if terminal and sent >= len(job.records):
                yield {"state": state.value, "error": error, "records": sent}
                return

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, object]:
        states = collections.Counter(job.state.value for job in self._jobs.values())
        cache = self.session.cache_info()
        compile_total = cache["hits"] + cache["misses"]
        plan_total = cache["planner_hits"] + cache["planner_misses"]
        return {
            "accepting": self._accepting,
            "workers": self.workers,
            "queue_depth": len(self._queue),
            "running": len(self._running),
            "jobs": {
                "total": len(self._jobs),
                **{state.value: states.get(state.value, 0) for state in JobState},
            },
            "records_produced": self._records_produced,
            "admission": self.admission.stats(),
            "compile_cache": {
                "hits": cache["hits"],
                "misses": cache["misses"],
                "hit_rate": cache["hits"] / compile_total if compile_total else 0.0,
            },
            "plan_cache": {
                "hits": cache["planner_hits"],
                "misses": cache["planner_misses"],
                "stores": cache["planner_stores"],
                "hit_rate": cache["planner_hits"] / plan_total if plan_total else 0.0,
                "persistent": bool(cache["planner_persistent"]),
            },
            "tenants": {
                tenant: dict(counter) for tenant, counter in sorted(self._tenants.items())
            },
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _tenant_counter(self, tenant: str) -> collections.Counter:
        counter = self._tenants.get(tenant)
        if counter is None:
            counter = self._tenants[tenant] = collections.Counter()
        return counter

    async def _dispatch_loop(self) -> None:
        """Admit queued jobs FIFO into the bounded worker pool.

        Strictly FIFO: when the head of the queue cannot be admitted (caps),
        nothing behind it jumps ahead — a big job cannot be starved by a
        stream of small ones.  Every completion/release sets the wake event,
        so deferred heads are retried as soon as resources free up.
        """
        while True:
            await self._wake.wait()
            self._wake.clear()
            while self._queue and len(self._running) < self.workers:
                job = self._queue[0]
                if job.cancel_requested:
                    self._queue.popleft()
                    await self._finish(job, JobState.CANCELLED)
                    continue
                if not self.admission.try_admit(job):
                    break
                self._queue.popleft()
                async with job.condition:
                    job.advance(JobState.ADMITTED)
                task = asyncio.create_task(self._run_job(job))
                self._running.add(task)
                task.add_done_callback(self._worker_done)

    def _worker_done(self, task: asyncio.Task) -> None:
        self._running.discard(task)
        self._wake.set()
        if not task.cancelled() and task.exception() is not None:
            # _run_job converts job failures itself; anything surfacing here
            # is a service bug — re-raise it loudly on the loop.
            raise task.exception()

    async def _run_job(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        timeout = (
            job.spec.timeout_s
            if job.spec.timeout_s is not None
            else self.default_timeout_s
        )
        deadline = loop.time() + timeout if timeout is not None else None
        try:
            for point in job.spec.points:
                if job.cancel_requested:
                    raise _JobCancelled
                await self._advance(job, JobState.COMPILING)
                compiled = await self._bounded(
                    asyncio.to_thread(self.session.compile, point), deadline
                )
                if job.cancel_requested:
                    raise _JobCancelled
                await self._advance(job, JobState.RUNNING)
                record = await self._bounded(
                    asyncio.to_thread(
                        self.session.run,
                        compiled,
                        mode=job.spec.mode,
                        verify=job.spec.verify,
                        scratch_dir=job.scratch_dir,
                    ),
                    deadline,
                )
                async with job.condition:
                    job.records.append(record)
                    self._records_produced += 1
                    job.condition.notify_all()
            await self._finish(
                job,
                JobState.CANCELLED if job.cancel_requested else JobState.DONE,
            )
        except _JobCancelled:
            await self._finish(job, JobState.CANCELLED)
        except _JobTimeout as exc:
            job.error = f"JobTimeout: job exceeded its {timeout:g}s budget"
            await self._finish(job, JobState.FAILED, stray=exc.stray)
        except Exception as exc:  # noqa: BLE001 — any failure becomes the job's error
            job.error = f"{type(exc).__name__}: {exc}"
            await self._finish(job, JobState.FAILED)

    async def _bounded(self, coro, deadline: Optional[float]):
        """Await ``coro`` under the job deadline.

        On timeout the underlying thread keeps running (blocking work cannot
        be interrupted), so the raised :class:`_JobTimeout` carries the live
        future and scratch reclamation waits for it.
        """
        future = asyncio.ensure_future(coro)
        if deadline is None:
            return await future
        remaining = deadline - asyncio.get_running_loop().time()
        try:
            return await asyncio.wait_for(asyncio.shield(future), max(remaining, 0))
        except (TimeoutError, asyncio.TimeoutError):
            raise _JobTimeout(future) from None

    async def _advance(self, job: Job, state: JobState) -> None:
        async with job.condition:
            job.advance(state)
            job.condition.notify_all()

    async def _finish(
        self,
        job: Job,
        state: JobState,
        *,
        stray: Optional[asyncio.Future] = None,
    ) -> None:
        """Terminal transition + resource release + scratch reclamation."""
        async with job.condition:
            if job.state is not state:
                job.advance(state)
            job.condition.notify_all()
        self._tenant_counter(job.spec.tenant)[state.value] += 1
        if stray is not None and not stray.done():
            # A timed-out run is still in its thread: release/reap only when
            # it lands, or we would rmtree scratch under a live writer.
            self._strays.add(stray)
            stray.add_done_callback(lambda fut: self._stray_done(fut, job))
        else:
            if stray is not None:
                # consume the stray's exception so the loop never warns
                with contextlib.suppress(BaseException):
                    stray.exception()
            self._reclaim(job)

    def _stray_done(self, future: asyncio.Future, job: Job) -> None:
        self._strays.discard(future)
        with contextlib.suppress(BaseException):
            future.exception()
        self._reclaim(job)

    def _reclaim(self, job: Job) -> None:
        self.admission.release(job)
        shutil.rmtree(job.scratch_dir, ignore_errors=True)
        self._wake.set()
        if all(j.terminal for j in self._jobs.values()) and not self._queue:
            self._idle.set()
