"""Blocking HTTP client for the job service (stdlib ``http.client`` only).

For tests, benchmarks and CLI use from synchronous code.  Mirrors the server
routes one-to-one; every error response is re-raised as the matching service
exception so callers handle ``AdmissionRejected`` the same way whether they
talk to a :class:`~repro.service.scheduler.JobService` in-process or over
the wire.
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, Iterator, List, Optional

from repro.api.records import RunRecord
from repro.service.jobs import (
    AdmissionRejected,
    JobSpec,
    ServiceClosedError,
    ServiceError,
    UnknownJobError,
    spec_to_json,
)

__all__ = ["ServiceClient"]

_ERROR_BY_STATUS = {
    404: UnknownJobError,
    429: AdmissionRejected,
    503: ServiceClosedError,
}


class ServiceClient:
    """Synchronous client bound to one service endpoint."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout: float = 300.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[Dict] = None) -> Dict:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = json.dumps(body) if body is not None else None
            connection.request(
                method, path, body=payload,
                headers={"Content-Type": "application/json"} if payload else {},
            )
            response = connection.getresponse()
            data = json.loads(response.read() or b"{}")
            if response.status >= 400:
                self._raise(response.status, data)
            return data
        finally:
            connection.close()

    @staticmethod
    def _raise(status: int, data: Dict) -> None:
        message = data.get("message", f"HTTP {status}")
        raise _ERROR_BY_STATUS.get(status, ServiceError)(message)

    # ------------------------------------------------------------------
    # routes
    # ------------------------------------------------------------------
    def health(self) -> bool:
        return bool(self._request("GET", "/healthz").get("ok"))

    def submit(self, spec: JobSpec) -> Dict:
        """POST the spec; returns the job snapshot (``snapshot["id"]``)."""
        return self._request("POST", "/jobs", spec_to_json(spec))

    def submit_source(self, source: str, *, tenant: str = "default",
                      mode: str = "execute", **extra) -> Dict:
        """Submit a mini-HPF program via the ``source`` shorthand."""
        body = {"source": source, "tenant": tenant, "mode": mode, **extra}
        return self._request("POST", "/jobs", body)

    def job(self, job_id: int) -> Dict:
        return self._request("GET", f"/jobs/{job_id}")

    def jobs(self) -> List[Dict]:
        return self._request("GET", "/jobs")["jobs"]

    def cancel(self, job_id: int) -> Dict:
        return self._request("DELETE", f"/jobs/{job_id}")

    def records(self, job_id: int) -> List[RunRecord]:
        """The job's finished records, decoded back to :class:`RunRecord`."""
        data = self._request("GET", f"/jobs/{job_id}/records")
        return [RunRecord.from_json_dict(r) for r in data["records"]]

    def metrics(self) -> Dict:
        return self._request("GET", "/metrics")

    # ------------------------------------------------------------------
    def stream(self, job_id: int) -> Iterator[Dict]:
        """Yield the ndjson events of ``GET /jobs/{id}/stream`` as dicts.

        Record events are ``{"index", "record"}`` (the record still JSON);
        the final event is ``{"state", "error", "records"}``.
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request("GET", f"/jobs/{job_id}/stream")
            response = connection.getresponse()
            if response.status >= 400:
                self._raise(response.status, json.loads(response.read() or b"{}"))
            buffer = b""
            while True:
                chunk = response.read1(65536)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line)
        finally:
            connection.close()

    def wait(self, job_id: int) -> Dict:
        """Follow the stream to completion; returns the terminal event."""
        event = None
        for event in self.stream(job_id):
            pass
        if event is None or "state" not in event:
            raise ServiceError(f"stream of job {job_id} ended without a terminal event")
        return event

    def run(self, spec: JobSpec) -> List[RunRecord]:
        """Submit, wait, and return the decoded records (raises on failure)."""
        job_id = self.submit(spec)["id"]
        final = self.wait(job_id)
        if final["state"] != "done":
            raise ServiceError(
                f"job {job_id} finished {final['state']}: {final.get('error')}"
            )
        return self.records(job_id)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ServiceClient({self.host}:{self.port})"
