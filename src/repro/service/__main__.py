"""``python -m repro.service`` — run the compile-and-run job server.

Example::

    python -m repro.service --port 8642 --workers 4 \\
        --memory-budget-bytes 268435456 --scratch-quota-bytes 1073741824 \\
        --plan-cache-dir /tmp/plan-cache

then submit with :class:`repro.service.ServiceClient`, or raw HTTP::

    curl -s localhost:8642/metrics
    curl -s -X POST localhost:8642/jobs -d '{"points": [{"workload": \\
        "matmul", "n": 96, "nprocs": 4, "slab_ratio": 0.25}], "tenant": "me"}'
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
from pathlib import Path
from typing import List, Optional

from repro.machine.parameters import get_preset
from repro.service.admission import AdmissionPolicy
from repro.service.scheduler import JobService
from repro.service.server import ServiceServer


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve compile-and-run jobs over HTTP.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8642,
                        help="TCP port (0 picks a free one; default 8642)")
    parser.add_argument("--workers", type=int, default=2,
                        help="concurrent jobs (default 2)")
    parser.add_argument("--backend", choices=("simulated", "processes"),
                        default="simulated",
                        help="EXECUTE backend: in-process simulation or one "
                             "OS process per rank")
    parser.add_argument("--machine", default=None, metavar="PRESET",
                        help="machine model preset (touchstone-delta, "
                             "paragon, sp1, modern; default touchstone-delta)")
    parser.add_argument("--memory-budget-bytes", type=int, default=None,
                        help="aggregate in-flight memory cap (default: unlimited)")
    parser.add_argument("--scratch-quota-bytes", type=int, default=None,
                        help="aggregate scratch-disk quota (default: unlimited)")
    parser.add_argument("--max-queue-depth", type=int, default=64,
                        help="reject submissions beyond this many queued jobs")
    parser.add_argument("--scratch-root", type=Path, default=None,
                        help="directory for per-job scratch (default: "
                             "<config scratch>/service)")
    parser.add_argument("--plan-cache-dir", type=Path, default=None,
                        help="persist winning plans here across restarts")
    parser.add_argument("--timeout-s", type=float, default=None,
                        help="default per-job wall-clock budget")
    parser.add_argument("--optimize", default="greedy",
                        help="default plan optimizer (default greedy)")
    return parser


async def _serve(args: argparse.Namespace) -> int:
    service = JobService(
        params=get_preset(args.machine) if args.machine else None,
        policy=AdmissionPolicy(
            memory_budget_bytes=args.memory_budget_bytes,
            scratch_quota_bytes=args.scratch_quota_bytes,
            max_queue_depth=args.max_queue_depth,
        ),
        workers=args.workers,
        backend=args.backend,
        scratch_root=args.scratch_root,
        plan_cache_dir=args.plan_cache_dir,
        optimize=args.optimize,
        default_timeout_s=args.timeout_s,
    )
    server = ServiceServer(service, host=args.host, port=args.port)
    await server.start()
    print(f"repro service listening on http://{args.host}:{server.port} "
          f"({args.workers} workers, backend={args.backend})")
    try:
        await asyncio.Event().wait()  # serve until interrupted
    finally:
        print("draining ...")
        await server.close(drain=True)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    with contextlib.suppress(KeyboardInterrupt):
        return asyncio.run(_serve(args))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
