"""Compile-and-run service: a multi-tenant async job server over Session.

The paper's framework compiles an out-of-core program once and reuses the
plan; this package turns that into a long-lived server.  Tenants POST
workload points (or mini-HPF source) over HTTP, jobs pass admission control
(aggregate memory cap, scratch-disk quota, bounded queue), run on a bounded
worker pool over one shared :class:`~repro.api.Session` — one compile LRU
and one plan cache across all tenants — and stream their
:class:`~repro.api.RunRecord`\\ s back as newline-delimited JSON,
bit-identical to a direct ``Session.run``.

>>> from repro.service import JobService, serve_in_thread, ServiceClient
>>> handle = serve_in_thread(JobService(workers=2))
>>> client = ServiceClient(port=handle.port)
"""

from repro.service.admission import AdmissionController, AdmissionPolicy
from repro.service.client import ServiceClient
from repro.service.jobs import (
    AdmissionRejected,
    Job,
    JobSpec,
    JobState,
    ServiceClosedError,
    ServiceError,
    UnknownJobError,
    point_from_json,
    point_to_json,
    spec_from_json,
    spec_to_json,
)
from repro.service.scheduler import JobService
from repro.service.server import ServiceHandle, ServiceServer, serve_in_thread

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "AdmissionRejected",
    "Job",
    "JobService",
    "JobSpec",
    "JobState",
    "ServiceClient",
    "ServiceClosedError",
    "ServiceError",
    "ServiceHandle",
    "ServiceServer",
    "UnknownJobError",
    "point_from_json",
    "point_to_json",
    "serve_in_thread",
    "spec_from_json",
    "spec_to_json",
]
