"""Admission control: don't oversubscribe memory or scratch, bound the queue.

The service accepts work it cannot run *yet* (jobs queue in FIFO order) but
never work it cannot run *at all* and never more concurrent demand than the
operator configured:

* **Aggregate memory cap** — the sum of the declared
  ``memory_budget_bytes`` of every in-flight job (admitted, compiling or
  running) stays at or below ``AdmissionPolicy.memory_budget_bytes``.  A job
  that would push the sum over the cap waits in the queue.
* **Scratch-disk quota** — the *measured* bytes of every in-flight job's
  ``vm_*`` directories (via
  :func:`repro.resilience.reaper.scratch_usage_bytes`) plus declared
  reservations stay at or below ``scratch_quota_bytes``.  Measured usage
  counts for at least the declared reservation, so a job that has not
  written yet still holds its promised share.
* **Queue-depth limit** — once ``max_queue_depth`` jobs are waiting, new
  submissions are rejected outright (HTTP 429); likewise a job whose own
  declared demand exceeds a whole cap, which could never be admitted.

Both gauges are *peak-tracked* so tests (and operators) can assert the cap
was provably never exceeded, not just that it holds right now.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.resilience.reaper import scratch_usage_bytes
from repro.service.jobs import AdmissionRejected, Job, JobSpec

__all__ = ["AdmissionPolicy", "AdmissionController"]


@dataclasses.dataclass(frozen=True)
class AdmissionPolicy:
    """Operator-set resource limits of one service instance.

    ``None`` disables the corresponding cap.  The queue depth is always
    bounded — an unbounded queue just moves the failure to the OOM killer.
    """

    memory_budget_bytes: Optional[int] = None
    scratch_quota_bytes: Optional[int] = None
    max_queue_depth: int = 64

    def __post_init__(self) -> None:
        if self.memory_budget_bytes is not None and self.memory_budget_bytes <= 0:
            raise ValueError(
                f"memory_budget_bytes cap must be positive, got {self.memory_budget_bytes}"
            )
        if self.scratch_quota_bytes is not None and self.scratch_quota_bytes <= 0:
            raise ValueError(
                f"scratch_quota_bytes must be positive, got {self.scratch_quota_bytes}"
            )
        if self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be at least 1, got {self.max_queue_depth}"
            )


class AdmissionController:
    """Tracks in-flight resource demand and decides queue/admit/reject."""

    def __init__(self, policy: AdmissionPolicy):
        self.policy = policy
        self._active: Dict[int, Job] = {}
        self.rejections = 0
        self.deferrals = 0
        self.admissions = 0
        self.peak_memory_in_flight = 0
        self.peak_scratch_in_flight = 0

    # ------------------------------------------------------------------
    # gauges
    # ------------------------------------------------------------------
    def memory_in_flight(self) -> int:
        """Declared bytes of every admitted-but-not-finished job."""
        return sum(job.spec.memory_budget_bytes for job in self._active.values())

    def scratch_in_flight(self) -> int:
        """Max(measured, declared) scratch bytes per in-flight job, summed.

        Measured usage is what the job's ``vm_*`` directories actually hold
        on disk right now; the declared reservation keeps a job that has not
        written yet from looking free.
        """
        total = 0
        for job in self._active.values():
            measured = scratch_usage_bytes(job.scratch_dir)
            total += max(measured, job.spec.scratch_bytes)
        return total

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------
    def check_enqueue(self, queue_depth: int, spec: JobSpec) -> None:
        """Reject (raise) submissions the service could never serve.

        Called at ``POST /jobs`` time: a full queue or a single-job demand
        above a whole cap is a hard 429, everything else may queue.
        """
        if queue_depth >= self.policy.max_queue_depth:
            self.rejections += 1
            raise AdmissionRejected(
                f"queue full ({queue_depth} jobs waiting, "
                f"limit {self.policy.max_queue_depth}); retry later"
            )
        cap = self.policy.memory_budget_bytes
        if cap is not None and spec.memory_budget_bytes > cap:
            self.rejections += 1
            raise AdmissionRejected(
                f"job declares memory_budget_bytes={spec.memory_budget_bytes} "
                f"above the service cap of {cap}; it could never be admitted"
            )
        quota = self.policy.scratch_quota_bytes
        if quota is not None and spec.scratch_bytes > quota:
            self.rejections += 1
            raise AdmissionRejected(
                f"job declares scratch_bytes={spec.scratch_bytes} above the "
                f"service quota of {quota}; it could never be admitted"
            )

    def try_admit(self, job: Job) -> bool:
        """Admit ``job`` if both caps hold with it in flight; else defer."""
        cap = self.policy.memory_budget_bytes
        if cap is not None:
            if self.memory_in_flight() + job.spec.memory_budget_bytes > cap:
                self.deferrals += 1
                return False
        quota = self.policy.scratch_quota_bytes
        if quota is not None:
            if self.scratch_in_flight() + max(
                scratch_usage_bytes(job.scratch_dir), job.spec.scratch_bytes
            ) > quota:
                self.deferrals += 1
                return False
        self._active[job.id] = job
        self.admissions += 1
        self.peak_memory_in_flight = max(
            self.peak_memory_in_flight, self.memory_in_flight()
        )
        self.peak_scratch_in_flight = max(
            self.peak_scratch_in_flight, self.scratch_in_flight()
        )
        return True

    def release(self, job: Job) -> None:
        """Return ``job``'s resources (idempotent; never-admitted jobs too)."""
        self._active.pop(job.id, None)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        return {
            "rejections": self.rejections,
            "deferrals": self.deferrals,
            "admissions": self.admissions,
            "in_flight": len(self._active),
            "memory_in_flight_bytes": self.memory_in_flight(),
            "scratch_in_flight_bytes": self.scratch_in_flight(),
            "peak_memory_in_flight_bytes": self.peak_memory_in_flight,
            "peak_scratch_in_flight_bytes": self.peak_scratch_in_flight,
            "memory_cap_bytes": self.policy.memory_budget_bytes,
            "scratch_quota_bytes": self.policy.scratch_quota_bytes,
            "max_queue_depth": self.policy.max_queue_depth,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdmissionController({len(self._active)} in flight, "
            f"{self.rejections} rejected)"
        )
