"""Minimal HTTP/1.1 front end of the job service (stdlib only).

The wire protocol is deliberately small — JSON request/response bodies over
``asyncio.start_server``, one request per connection (``Connection: close``
everywhere), no TLS, no chunked encoding.  It is an *operational* surface
for a simulation service, not a general web framework:

====== ========================== ==========================================
Method Path                       Meaning
====== ========================== ==========================================
POST   ``/jobs``                  submit a job (``201`` + job snapshot)
GET    ``/jobs``                  list all job snapshots
GET    ``/jobs/{id}``             one job's snapshot
GET    ``/jobs/{id}/records``     the finished records (full JSON dicts)
GET    ``/jobs/{id}/stream``      newline-delimited JSON: one line per
                                  record as it lands, then a terminal line
DELETE ``/jobs/{id}``             request cancellation
GET    ``/metrics``               queue depth, admission + cache counters
GET    ``/healthz``               liveness probe
====== ========================== ==========================================

Errors map onto status codes: bad specs and workload-contract violations are
``400``, unknown jobs ``404``, admission rejections ``429``, a draining
service ``503``, oversized bodies ``413``, everything unexpected ``500``.
Every error body is ``{"error": "<type>", "message": "..."}``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
from typing import Dict, Optional, Tuple

from repro.exceptions import ReproError
from repro.service.jobs import (
    AdmissionRejected,
    ServiceClosedError,
    ServiceError,
    UnknownJobError,
    spec_from_json,
)
from repro.service.scheduler import JobService

__all__ = ["ServiceServer", "ServiceHandle", "serve_in_thread", "MAX_BODY_BYTES"]

#: request bodies above this are rejected with 413 before parsing
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """Internal: carry a status code + message up to the response writer."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


def _status_for(exc: Exception) -> int:
    """Map a service/library exception onto its HTTP status."""
    if isinstance(exc, AdmissionRejected):
        return 429
    if isinstance(exc, ServiceClosedError):
        return 503
    if isinstance(exc, UnknownJobError):
        return 404
    if isinstance(exc, (ServiceError, ReproError)):
        return 400
    return 500


def _encode(status: int, payload: Dict[str, object]) -> bytes:
    body = (json.dumps(payload) + "\n").encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("ascii")
    return head + body


class ServiceServer:
    """Bind a :class:`~repro.service.scheduler.JobService` to a TCP port."""

    def __init__(self, service: JobService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port  # updated to the bound port after start()
        self._server: Optional[asyncio.base_events.Server] = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        await self.service.start()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self, drain: bool = True) -> None:
        """Stop listening, then drain (or cancel) the service."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close(drain=drain)

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _HttpError as exc:
                writer.write(_encode(exc.status, {
                    "error": "BadRequest", "message": str(exc)}))
                return
            try:
                await self._route(method, path, body, writer)
            except _HttpError as exc:
                writer.write(_encode(exc.status, {
                    "error": "HttpError", "message": str(exc)}))
            except Exception as exc:  # noqa: BLE001 — every failure becomes a status
                writer.write(_encode(_status_for(exc), {
                    "error": type(exc).__name__, "message": str(exc)}))
            with contextlib.suppress(ConnectionError):
                await writer.drain()
        finally:
            with contextlib.suppress(ConnectionError):
                writer.close()
                await writer.wait_closed()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Optional[Dict]]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise _HttpError(400, "empty request")
        parts = request_line.split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpError(400, f"malformed request line {request_line!r}")
        method, target = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError as exc:
                    raise _HttpError(400, f"bad Content-Length {value!r}") from exc
        if content_length > MAX_BODY_BYTES:
            raise _HttpError(413, f"body of {content_length} bytes exceeds "
                                  f"the {MAX_BODY_BYTES}-byte limit")
        body: Optional[Dict] = None
        if content_length:
            raw = await reader.readexactly(content_length)
            try:
                body = json.loads(raw)
            except ValueError as exc:
                raise _HttpError(400, f"request body is not valid JSON: {exc}") from exc
        return method, target.split("?", 1)[0], body

    async def _route(self, method: str, path: str, body: Optional[Dict],
                     writer: asyncio.StreamWriter) -> None:
        segments = [s for s in path.split("/") if s]
        if segments == ["healthz"] and method == "GET":
            writer.write(_encode(200, {"ok": True}))
            return
        if segments == ["metrics"] and method == "GET":
            writer.write(_encode(200, self.service.metrics()))
            return
        if segments == ["jobs"]:
            if method == "POST":
                if body is None:
                    raise _HttpError(400, "POST /jobs needs a JSON body")
                job = await self.service.submit(spec_from_json(body))
                writer.write(_encode(201, job.snapshot()))
                return
            if method == "GET":
                writer.write(_encode(200, {
                    "jobs": [job.snapshot() for job in self.service.jobs()]}))
                return
            raise _HttpError(405, f"{method} not allowed on /jobs")
        if len(segments) >= 2 and segments[0] == "jobs":
            try:
                job_id = int(segments[1])
            except ValueError as exc:
                raise _HttpError(404, f"job ids are integers, got {segments[1]!r}") from exc
            tail = segments[2:]
            if not tail:
                if method == "GET":
                    writer.write(_encode(200, self.service.get(job_id).snapshot()))
                    return
                if method == "DELETE":
                    job = await self.service.cancel(job_id)
                    writer.write(_encode(200, job.snapshot()))
                    return
                raise _HttpError(405, f"{method} not allowed on /jobs/{{id}}")
            if tail == ["records"] and method == "GET":
                job = self.service.get(job_id)
                writer.write(_encode(200, {
                    "id": job.id,
                    "state": job.state.value,
                    "records": [r.to_json_dict() for r in job.records],
                }))
                return
            if tail == ["stream"] and method == "GET":
                await self._stream(job_id, writer)
                return
        raise _HttpError(404, f"no route for {method} {path}")

    async def _stream(self, job_id: int, writer: asyncio.StreamWriter) -> None:
        """Newline-delimited JSON; no Content-Length — EOF marks the end."""
        self.service.get(job_id)  # 404 before committing to a 200
        writer.write((
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("ascii"))
        await writer.drain()
        async for event in self.service.stream(job_id):
            writer.write((json.dumps(event) + "\n").encode("utf-8"))
            await writer.drain()


# ---------------------------------------------------------------------------
# thread-hosted server: lets synchronous code (tests, the blocking client,
# benchmark drivers) run the service without owning an event loop.
# ---------------------------------------------------------------------------
class ServiceHandle:
    """A running service + event loop on a background thread."""

    def __init__(self, server: ServiceServer, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread):
        self.server = server
        self._loop = loop
        self._thread = thread
        self._closed = False

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def url(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def run(self, coro):
        """Run a coroutine on the service loop and wait for its result."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    def close(self, drain: bool = True) -> None:
        if self._closed:
            return
        self._closed = True
        self.run(self.server.close(drain=drain))
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=60)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve_in_thread(service: JobService, host: str = "127.0.0.1",
                    port: int = 0) -> ServiceHandle:
    """Start ``service`` behind an HTTP server on a daemon thread."""
    server = ServiceServer(service, host=host, port=port)
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def _run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_forever()
        # drain callbacks scheduled by the final close() before tearing down
        loop.run_until_complete(loop.shutdown_asyncgens())
        loop.close()

    thread = threading.Thread(target=_run, name="repro-service", daemon=True)
    thread.start()
    started.wait(timeout=60)
    if not started.is_set():  # pragma: no cover - defensive
        raise ServiceError("service thread failed to start within 60s")
    return ServiceHandle(server, loop, thread)
