#!/usr/bin/env python
"""Statement fusion: fused vs unfused plans for the same chain, side by side.

The plan optimizer's fourth dimension: with ``fusion="on"`` an elementwise
producer and its single elementwise consumer may compile into one fused unit
whose slab loop runs both statements' per-slab work with the intermediate
resident — the intermediate's Local Array Files are never written or read.

This script compiles the benchmark chain (``t = a @ b``, ``u = t + d``,
``c = u * e``) under one 48 KiB budget with fusion off and on, prints the
``RunRecord.plan`` deltas (the ``fused_edges`` entry, the step list shrinking
from three to two, the predicted cost), then really executes both plans to
show the charged I/O dropping by exactly the intermediate's write+read pass.
The reduction producing ``t`` refuses to fuse — only the ``u`` edge is legal
— and a diamond-shaped chain degrades to the unfused plan entirely.

Run with::

    python examples/fusion_pipeline.py
"""

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import RunConfig, Session, WorkloadPoint  # noqa: E402

N = 256
NPROCS = 4
BUDGET = 48 * 1024

CHAIN_SOURCE = f"""
program chain
  parameter (n = {N}, nprocs = {NPROCS})
  real a(n, n), b(n, n), t(n, n), d(n, n), u(n, n), e(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template tmpl(n)
!hpf$ distribute tmpl(block) onto Pr
!hpf$ align a(*, :) with tmpl
!hpf$ align t(*, :) with tmpl
!hpf$ align d(*, :) with tmpl
!hpf$ align u(*, :) with tmpl
!hpf$ align e(*, :) with tmpl
!hpf$ align c(*, :) with tmpl
!hpf$ align b(:, *) with tmpl
  do j = 1, n
    forall (k = 1 : n)
      t(:, j) = sum(a(:, k) * b(k, j))
    end forall
  end do
  u(:, :) = add(t(:, :), d(:, :))
  c(:, :) = multiply(u(:, :), e(:, :))
end program
"""


def point(fusion: str) -> WorkloadPoint:
    options = {"source": CHAIN_SOURCE, "memory_budget_bytes": BUDGET}
    if fusion != "off":
        options["fusion"] = fusion
    return WorkloadPoint("hpf", optimize="greedy", options=options)


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="fusion-") as scratch:
        session = Session(config=RunConfig(scratch_dir=scratch))

        print(f"three-statement chain, N={N}, P={NPROCS}, "
              f"budget {BUDGET // 1024} KiB per node\n")

        # Compile both plans and diff the schedules.
        for fusion in ("off", "on"):
            compiled = session.compile(point(fusion))
            schedule = compiled.program.schedule
            decision = compiled.program.planner
            print(f"fusion={fusion}: {len(schedule.steps)} steps, "
                  f"fused edges {list(decision.fused_edges)}, predicted "
                  f"{decision.predicted_total_time:.2f}s")
            for step in schedule.steps:
                fused = f"  [fused away: {', '.join(step.fused)}]" if step.fused else ""
                print(f"    step {step.index + 1}: {step.statement_name} "
                      f"-> {step.writes}{fused}")

        # Execute both (verified against the in-core NumPy oracle) and diff
        # the RunRecord.plan payloads plus the charged counters.
        records = {fusion: session.execute(point(fusion)) for fusion in ("off", "on")}
        print("\nexecuted records (verified against NumPy):")
        for fusion, record in records.items():
            assert record.verified is True
            print(f"  fusion={fusion:<4} plan.fused_edges="
                  f"{list(record.plan.get('fused_edges', []))!s:<6} charged "
                  f"{record.io_bytes_per_proc / 1e6:6.3f} MB I/O per proc, "
                  f"{record.simulated_seconds:6.2f} simulated seconds")

        saved = (records["off"].io_bytes_per_proc - records["on"].io_bytes_per_proc)
        print(f"\nfusion saved {saved} bytes of charged I/O per proc — the "
              "intermediate u's write pass plus its read pass, gone")

        # A diamond (t has two consumers) refuses to fuse: the plan degrades
        # to the fully materialized pipeline and still verifies.
        diamond = CHAIN_SOURCE.replace(
            "  c(:, :) = multiply(u(:, :), e(:, :))",
            "  c(:, :) = multiply(u(:, :), e(:, :))\n"
            "  f(:, :) = subtract(u(:, :), d(:, :))",
        ).replace(
            "real a(n, n)", "real f(n, n), a(n, n)"
        ).replace(
            "!hpf$ align a(*, :) with tmpl",
            "!hpf$ align f(*, :) with tmpl\n!hpf$ align a(*, :) with tmpl",
        )
        record = session.execute(WorkloadPoint(
            "hpf", optimize="greedy",
            options={"source": diamond, "memory_budget_bytes": BUDGET,
                     "fusion": "on"},
        ))
        assert record.verified is True
        print(f"\ndiamond dataflow (u feeds two statements): fused_edges="
              f"{list(record.plan.get('fused_edges', []))} — refused, "
              "materialized, still verified")


if __name__ == "__main__":
    main()
