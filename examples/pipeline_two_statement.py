#!/usr/bin/env python
"""Whole-program compilation: a two-statement HPF pipeline, end to end.

The program below computes ``t = a @ b`` (the paper's GAXPY reduction) and
then ``c = t + d`` elementwise.  The whole-program compiler lowers both
statements through the one Figure-7 pipeline and schedules the intermediate
``t`` to be *reused from its Local Array File*: statement one writes it once,
statement two reads it once, and it is never regenerated or re-scattered.

The script

1. compiles the source and prints the generated whole-program schedule
   (with the LAF-reuse annotations),
2. estimates the program analytically — the record carries a per-statement
   cost breakdown that sums to the program total, and
3. really executes it, verifying the numerics against an in-core NumPy
   evaluation of the same statement list.

Run with::

    python examples/pipeline_two_statement.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import Session  # noqa: E402

PIPELINE_SOURCE = """
program pipeline
  parameter (n = 128, nprocs = 4)
  real a(n, n), b(n, n), t(n, n), d(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template tmpl(n)
!hpf$ distribute tmpl(block) onto Pr
!hpf$ align a(*, :) with tmpl
!hpf$ align t(*, :) with tmpl
!hpf$ align d(*, :) with tmpl
!hpf$ align c(*, :) with tmpl
!hpf$ align b(:, *) with tmpl
  do j = 1, n
    forall (k = 1 : n)
      t(:, j) = sum(a(:, k) * b(k, j))
    end forall
  end do
  c(:, :) = add(t(:, :), d(:, :))
end program
"""


def main() -> None:
    session = Session()

    # -- 1. compile: one whole-program schedule, intermediates reused --------
    compiled = session.compile(source=PIPELINE_SOURCE, slab_ratio=0.25)
    whole = compiled.program  # the CompiledWholeProgram
    print(whole.describe())
    print()
    print(whole.schedule.pretty())
    print()

    # -- 2. estimate: per-statement breakdown sums to the program total ------
    estimate = session.estimate(compiled)
    print(f"ESTIMATE: {estimate.simulated_seconds:.2f} simulated seconds "
          f"(io {estimate.io_time:.2f}s, compute {estimate.compute_time:.2f}s, "
          f"comm {estimate.comm_time:.2f}s)")
    for index, stmt in enumerate(estimate.statements, start=1):
        print(f"  statement {index}: {stmt['seconds']:.2f}s "
              f"(io {stmt['io']:.2f}s, "
              f"{stmt['bytes_read_per_proc'] / 1e6:.2f} MB read/proc, "
              f"{stmt['bytes_written_per_proc'] / 1e6:.2f} MB written/proc)")
    print()

    # -- 3. execute: real LAFs, real arithmetic, oracle-verified -------------
    record = session.execute(compiled)
    print(f"EXECUTE: verified={record.verified} "
          f"(max |error| = {record.max_abs_error:.2e})")
    print(f"  charged I/O identical to the estimate: "
          f"{record.io_requests_per_proc == estimate.io_requests_per_proc and record.io_bytes_per_proc == estimate.io_bytes_per_proc}")


if __name__ == "__main__":
    main()
