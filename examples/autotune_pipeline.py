#!/usr/bin/env python
"""Plan optimization: even-split vs cost-model-searched plans, side by side.

The compiler historically divided one node memory budget *evenly* across the
statements of a program and the arrays of a statement.  The plan optimizer
(:mod:`repro.planner`) turns that decision into a search: it enumerates
per-statement budget splits and allocation policies, prices every candidate
with the existing :class:`~repro.core.cost_model.PlanCost` model, and returns
a plan that is provably no worse than the even split.

This script compiles a three-statement program (``t = a @ b``, ``u = t + d``,
``c = u * e``) under one 48 KiB budget with each optimizer —

* ``none``       — the legacy even split,
* ``greedy``     — hill-climbing budget transfers (the Session default),
* ``exhaustive`` — a full grid over the budget simplex —

prints the chosen per-statement budgets and the predicted cost of each, then
really executes the even and greedy plans to show the *charged* I/O moving.
The searches are cached: a second compile of the same program replays the
winner from the session's plan cache (point it at a directory via
``Session(plan_cache_dir=...)`` to persist winners across processes).

Run with::

    python examples/autotune_pipeline.py
"""

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import RunConfig, Session, WorkloadPoint  # noqa: E402

N = 256
NPROCS = 4
BUDGET = 48 * 1024

CHAIN_SOURCE = f"""
program chain
  parameter (n = {N}, nprocs = {NPROCS})
  real a(n, n), b(n, n), t(n, n), d(n, n), u(n, n), e(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template tmpl(n)
!hpf$ distribute tmpl(block) onto Pr
!hpf$ align a(*, :) with tmpl
!hpf$ align t(*, :) with tmpl
!hpf$ align d(*, :) with tmpl
!hpf$ align u(*, :) with tmpl
!hpf$ align e(*, :) with tmpl
!hpf$ align c(*, :) with tmpl
!hpf$ align b(:, *) with tmpl
  do j = 1, n
    forall (k = 1 : n)
      t(:, j) = sum(a(:, k) * b(k, j))
    end forall
  end do
  u(:, :) = add(t(:, :), d(:, :))
  c(:, :) = multiply(u(:, :), e(:, :))
end program
"""


def point(optimize: str) -> WorkloadPoint:
    return WorkloadPoint(
        "hpf",
        optimize=optimize,
        options={"source": CHAIN_SOURCE, "memory_budget_bytes": BUDGET},
    )


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="autotune-") as scratch:
        session = Session(config=RunConfig(scratch_dir=scratch))

        print(f"three-statement chain, N={N}, P={NPROCS}, "
              f"budget {BUDGET // 1024} KiB per node\n")
        print(f"{'optimizer':<12} {'statement budgets (bytes)':<28} "
              f"{'policies':<28} {'predicted':>10}")
        for optimize in ("none", "greedy", "exhaustive"):
            compiled = session.compile(point(optimize))
            decision = compiled.program.planner
            print(f"{optimize:<12} {str(list(decision.statement_budgets)):<28} "
                  f"{str(list(decision.policies)):<28} "
                  f"{decision.predicted_total_time:>9.2f}s")

        print("\nexecuting the even and greedy plans (verified against NumPy):")
        for optimize in ("none", "greedy"):
            record = session.execute(point(optimize))
            assert record.verified is True
            print(f"  {optimize:<8} charged {record.io_bytes_per_proc / 1e6:6.3f} MB "
                  f"I/O per proc, {record.simulated_seconds:6.2f} simulated seconds")

        # Persistence: a plan cache pointed at a directory stores every
        # search winner as a JSON file; a *fresh* cache instance over the
        # same directory (e.g. a new process, or a new Session constructed
        # with plan_cache_dir=...) replays the plan without re-searching.
        from repro.hpf.frontend import frontend_to_ir
        from repro.hpf.parser import parse_program
        from repro.machine.parameters import touchstone_delta
        from repro.planner import PlanCache, plan_whole_program

        cache_dir = Path(scratch) / "plans"
        ir = frontend_to_ir(parse_program(CHAIN_SOURCE))
        searched, _ = plan_whole_program(
            ir, touchstone_delta(), BUDGET,
            optimizer="greedy", plan_cache=PlanCache(cache_dir),
        )
        replayed, _ = plan_whole_program(
            ir, touchstone_delta(), BUDGET,
            optimizer="greedy", plan_cache=PlanCache(cache_dir),
        )
        print(f"\nplan cache at {cache_dir.name}/: first compile searched "
              f"{searched.candidates_evaluated} candidates (cache "
              f"{searched.cache_status}); a fresh process replays the winner "
              f"(cache {replayed.cache_status}, "
              f"{replayed.candidates_evaluated} candidates priced)")


if __name__ == "__main__":
    main()
