#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation section.

Runs the paper-scale configurations (1K x 1K and 2K x 2K arrays, 4–64
processors) through the analytic estimator on the Touchstone-Delta-like
machine model and prints:

* Figure 10 — effect of slab-size variation (column-slab version),
* Table 1  — column-slab vs row-slab vs in-core,
* Table 2  — slab-size selection for multiple arrays,

plus the three ablation studies.  Absolute seconds are not expected to match
the 1994 measurements; the relative behaviour (who wins, by what factor, how
times move with slab ratio and processor count) is the reproduction target —
see EXPERIMENTS.md for the side-by-side numbers.

Run with::

    python examples/reproduce_paper_tables.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments import (
    run_figure10,
    run_memory_allocation_ablation,
    run_prefetch_ablation,
    run_storage_order_ablation,
    run_table1,
    run_table2,
)


def main() -> int:
    print("=" * 72)
    figure10 = run_figure10()
    print(figure10["table"])
    print()

    print("=" * 72)
    table1 = run_table1()
    print(table1["table"])
    speedups = table1["speedups"]
    print(
        f"\nrow-slab vs column-slab speedup: "
        f"min {min(speedups.values()):.1f}x, max {max(speedups.values()):.1f}x"
    )
    print()

    print("=" * 72)
    table2 = run_table2()
    print(table2["table"])
    best = table2["best"]
    print(
        "\nbest configuration per experiment: "
        f"grow B -> {best['vary_b']['time']:.2f}s, grow A -> {best['vary_a']['time']:.2f}s "
        "(growing A wins, as the paper concludes)"
    )
    print()

    for runner in (run_memory_allocation_ablation, run_storage_order_ablation, run_prefetch_ablation):
        print("=" * 72)
        print(runner()["table"])
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
