#!/usr/bin/env python
"""Quickstart: compile and run one out-of-core GAXPY matrix multiplication.

This example walks through the library's public API end to end:

1. build the HPF-style program (arrays ``a``, ``b``, ``c`` with column-block /
   row-block distributions and a FORALL reduction),
2. compile it — the compiler estimates the I/O cost of the column-slab and
   row-slab access patterns and picks the cheaper one,
3. execute the compiled program on a simulated 4-processor machine with real
   Local Array Files, and
4. verify the out-of-core product against a dense NumPy reference.

Run with::

    python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.config import RunConfig
from repro.core import compile_gaxpy
from repro.kernels import generate_gaxpy_inputs
from repro.runtime import NodeProgramExecutor, VirtualMachine


def main() -> int:
    n = 128          # global array extent (the paper uses 1024; keep the demo quick)
    nprocs = 4       # simulated processors
    slab_ratio = 0.25  # each slab holds a quarter of the out-of-core local array

    print(f"Compiling out-of-core GAXPY: {n}x{n} reals on {nprocs} processors\n")
    compiled = compile_gaxpy(n, nprocs, slab_ratio=slab_ratio)
    print(compiled.describe())
    print()
    print("Generated node program (compare with Figures 9/12 of the paper):")
    print(compiled.node_program.pretty())
    print()

    inputs = generate_gaxpy_inputs(n)
    with VirtualMachine(nprocs, compiled.params, RunConfig()) as vm:
        result = NodeProgramExecutor(compiled).execute(vm, inputs)
    print(result.describe())
    if result.verified is not True:
        print("ERROR: out-of-core result does not match the dense reference")
        return 1
    print("\nOut-of-core result matches the dense NumPy reference.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
