#!/usr/bin/env python
"""Quickstart: the unified Session API, end to end.

One :class:`repro.Session` serves every workload through the same
compile → run → sweep surface:

1. compile and execute the paper's out-of-core GAXPY matrix multiplication
   (real Local Array Files, NumPy arithmetic, verified against a dense
   reference),
2. estimate the same point analytically with the machine model,
3. sweep a *mixed* list of gaxpy / transpose / elementwise points in one
   call (with a thread pool), and
4. compile a mini-HPF source program and run it through the same machinery.

Run with::

    python examples/quickstart.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import Session, WorkloadPoint

HPF_SOURCE = """
program gaxpy
  parameter (n = 64, nprocs = 4)
  real a(n, n), b(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template d(n)
!hpf$ distribute d(block) onto Pr
!hpf$ align a(*, :) with d
!hpf$ align c(*, :) with d
!hpf$ align b(:, *) with d
  do j = 1, n
    forall (k = 1 : n)
      c(:, j) = sum(a(:, k) * b(k, j))
    end forall
  end do
end program
"""


def main() -> int:
    n = 128          # global array extent (the paper uses 1024; keep the demo quick)
    nprocs = 4       # simulated processors
    session = Session()

    # 1. compile + execute one GAXPY point ---------------------------------
    point = WorkloadPoint("gaxpy", n=n, nprocs=nprocs, version="row", slab_ratio=0.25)
    compiled = session.compile(point)
    print(compiled.program.describe())
    print()
    record = session.execute(point)
    print(record.describe())
    if record.verified is not True:
        print("ERROR: out-of-core result does not match the dense reference")
        return 1
    print()

    # 2. the same point through the analytic estimator ---------------------
    estimate = session.estimate(point)
    print(f"analytic estimate of the same point: {estimate.simulated_seconds:.2f}s "
          f"(executed: {record.simulated_seconds:.2f}s)")
    print()

    # 3. a mixed sweep: three workloads, one call, four threads ------------
    points = [
        WorkloadPoint("gaxpy", n=n, nprocs=nprocs, version="column", slab_ratio=0.25),
        WorkloadPoint("gaxpy", n=n, nprocs=nprocs, version="row", slab_ratio=0.25),
        WorkloadPoint("transpose", n=n, nprocs=nprocs),
        WorkloadPoint("elementwise", n=n, nprocs=nprocs, options={"op": "multiply"}),
    ]
    print("mixed sweep (EXECUTE mode, 4 workers):")
    sweep_records = session.sweep(points, mode="execute", workers=4)
    for rec in sweep_records:
        print(f"  {rec.label:42s} {rec.simulated_seconds:8.3f}s  "
              f"io/proc={rec.io_requests_per_proc:5.0f} req  verified={rec.verified}")
    print()
    if not all(rec.verified is True for rec in sweep_records):
        print("ERROR: a sweep point does not match its dense reference")
        return 1

    # 4. a program entering through the mini-HPF frontend ------------------
    hpf = session.compile(source=HPF_SOURCE, slab_ratio=0.25)
    print(f"HPF program compiled: N={hpf.n}, P={hpf.nprocs}, "
          f"chosen strategy: {hpf.program.plan.strategy.value} slabs")
    hpf_record = session.run(hpf, mode="execute")
    print(f"  executed: {hpf_record.simulated_seconds:.2f}s, verified={hpf_record.verified}")
    if hpf_record.verified is not True:
        print("ERROR: the HPF program's result does not match the dense reference")
        return 1

    print("\nAll results match their dense NumPy references.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
