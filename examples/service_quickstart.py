#!/usr/bin/env python
"""Quickstart: the compile-and-run job service, end to end.

Starts the multi-tenant job server on a background thread (an ephemeral
port — no external process needed), then exercises the whole surface with
the blocking client:

1. two tenants submit EXECUTE jobs concurrently and get records back that
   are bit-identical to a direct ``Session.run``,
2. a third tenant streams a multi-point job's records as they land,
3. a mini-HPF source program is submitted via the ``source`` shorthand,
4. the metrics endpoint shows the shared compile cache working across
   tenants, and
5. the server drains gracefully.

Run with::

    python examples/service_quickstart.py

For a long-lived server use ``make serve`` / ``python -m repro.service``
and point :class:`repro.service.ServiceClient` (or curl) at it.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import Session, WorkloadPoint
from repro.config import RunConfig
from repro.service import JobService, JobSpec, ServiceClient, serve_in_thread

HPF_SOURCE = """
program square
  parameter (n = 64, nprocs = 4)
  real a(n, n), c(n, n)
!hpf$ processors Pr(nprocs)
!hpf$ template d(n)
!hpf$ distribute d(block) onto Pr
!hpf$ align a(*, :) with d
!hpf$ align c(*, :) with d
  do j = 1, n
    forall (k = 1 : n)
      c(:, j) = sum(a(:, k) * a(k, j))
    end forall
  end do
end program
"""


def main() -> int:
    point = WorkloadPoint("gaxpy", n=96, nprocs=4, slab_ratio=0.25)
    seed_config = RunConfig(seed=7)

    # the reference: a direct, in-process run of the same point
    with Session(config=seed_config) as session:
        direct = session.run(point, mode="execute")

    handle = serve_in_thread(JobService(config=seed_config, workers=2))
    client = ServiceClient(port=handle.port)
    print(f"service up on {handle.url}")

    # 1. two tenants, served concurrently by the worker pool
    alice = client.submit(JobSpec(points=(point,), tenant="alice"))
    bob = client.submit(JobSpec(points=(point,), tenant="bob"))
    for snap in (alice, bob):
        final = client.wait(snap["id"])
        (record,) = client.records(snap["id"])
        print(f"job {snap['id']} ({snap['tenant']}): {final['state']}, "
              f"{record.simulated_seconds:.4f} simulated seconds, "
              f"bit-identical to direct run: {record == direct}")

    # 2. a multi-point job, streamed as newline-delimited JSON events
    sweep = client.submit(JobSpec(
        points=tuple(WorkloadPoint("elementwise", n=n, nprocs=4,
                                   slab_ratio=0.25) for n in (48, 64, 96)),
        tenant="carol", mode="estimate",
    ))
    for event in client.stream(sweep["id"]):
        if "record" in event:
            print(f"  stream: record {event['index']} "
                  f"(n={event['record']['n']}, "
                  f"{event['record']['simulated_seconds']:.4f} simulated s)")
        else:
            print(f"  stream: terminal {event['state']} "
                  f"({event['records']} records)")

    # 3. mini-HPF source, compiled under the job's declared memory budget
    hpf = client.submit_source(HPF_SOURCE, tenant="carol",
                               memory_budget_bytes=64 * 1024)
    print(f"hpf job {hpf['id']}: {client.wait(hpf['id'])['state']}")

    # 4. one compile cache across all tenants
    metrics = client.metrics()
    print(f"metrics: {metrics['jobs']['done']} done, "
          f"{metrics['compile_cache']['hits']} compile-cache hits across "
          f"{len(metrics['tenants'])} tenants")

    # 5. graceful drain: queued and running jobs finish, scratch is reclaimed
    handle.close()
    print("drained and closed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
