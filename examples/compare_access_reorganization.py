#!/usr/bin/env python
"""Execute-mode comparison of the three GAXPY program versions.

Unlike :mod:`examples.reproduce_paper_tables` (which uses the analytic
estimator at the paper's full problem size), this example really runs the
out-of-core programs: Local Array Files are created on disk, slabs are read
and written, the arithmetic is performed with NumPy, and all three versions
are verified against a dense reference.  It then prints the measured
(simulated-machine) time and the two I/O metrics of the paper for each
version, demonstrating the order-of-magnitude I/O reduction of the
reorganized access pattern on a size that runs in seconds.

Run with::

    python examples/compare_access_reorganization.py [N] [P]
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.analysis.report import format_table
from repro.config import RunConfig
from repro.core import compile_gaxpy
from repro.kernels import (
    generate_gaxpy_inputs,
    run_gaxpy_column_slab,
    run_gaxpy_incore,
    run_gaxpy_row_slab,
)
from repro.runtime import VirtualMachine


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    nprocs = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    slab_ratio = 0.25

    compiled = compile_gaxpy(n, nprocs, slab_ratio=slab_ratio)
    print(compiled.decision.describe() if compiled.decision else compiled.describe())
    print()

    inputs = generate_gaxpy_inputs(n)
    rows = []
    for label, runner in [
        ("column-slab", run_gaxpy_column_slab),
        ("row-slab", run_gaxpy_row_slab),
        ("in-core", run_gaxpy_incore),
    ]:
        with VirtualMachine(nprocs, compiled.params, RunConfig()) as vm:
            run = runner(vm, compiled, inputs)
        rows.append(
            [
                label,
                f"{run.simulated_seconds:.3f}",
                f"{run.io_statistics['io_requests_per_proc']:.0f}",
                f"{(run.io_statistics['bytes_read_per_proc'] + run.io_statistics['bytes_written_per_proc']) / 1e6:.2f}",
                "yes" if run.verified else "NO",
            ]
        )
    print(
        format_table(
            ["version", "simulated time (s)", "I/O requests / proc", "I/O MB / proc", "verified"],
            rows,
            title=f"Out-of-core GAXPY, {n}x{n} reals on {nprocs} simulated processors "
            f"(slab ratio {slab_ratio:g})",
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
