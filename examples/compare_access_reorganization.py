#!/usr/bin/env python
"""Execute-mode comparison of the three GAXPY program versions.

Unlike :mod:`examples.reproduce_paper_tables` (which uses the analytic
estimator at the paper's full problem size), this example really runs the
out-of-core programs through the Session API: Local Array Files are created
on disk, slabs are read and written, the arithmetic is performed with NumPy,
and all three versions are verified against a dense reference.  It then
prints the measured (simulated-machine) time and the two I/O metrics of the
paper for each version, demonstrating the order-of-magnitude I/O reduction
of the reorganized access pattern on a size that runs in seconds.

Run with::

    python examples/compare_access_reorganization.py [N] [P]
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro import Session, WorkloadPoint
from repro.analysis.report import format_table


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 128
    nprocs = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    slab_ratio = 0.25

    session = Session()

    # Show the compiler's reasoning for the freely-chosen strategy
    # (version "" lets the cost model pick between column and row slabs).
    chosen = session.compile(
        WorkloadPoint("gaxpy", n=n, nprocs=nprocs, slab_ratio=slab_ratio)
    )
    print(chosen.program.describe())
    print()

    points = [
        WorkloadPoint("gaxpy", n=n, nprocs=nprocs, version=version,
                      slab_ratio=slab_ratio if version != "incore" else None)
        for version in ("column", "row", "incore")
    ]
    records = session.sweep(points, mode="execute", workers=3)

    rows = [
        [
            record.version,
            f"{record.simulated_seconds:.3f}",
            f"{record.io_requests_per_proc:.0f}",
            f"{record.io_bytes_per_proc / 1e6:.2f}",
            "yes" if record.verified else "NO",
        ]
        for record in records
    ]
    print(
        format_table(
            ["version", "simulated time (s)", "I/O requests / proc", "I/O MB / proc", "verified"],
            rows,
            title=f"Out-of-core GAXPY, {n}x{n} reals on {nprocs} simulated processors "
            f"(slab ratio {slab_ratio:g})",
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
