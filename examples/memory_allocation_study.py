#!/usr/bin/env python
"""Memory allocation study: how to split node memory between out-of-core arrays.

Reproduces the reasoning behind Table 2 and Section 4.2.1 of the paper at an
execute-mode scale: with a fixed total memory budget, it compares

* giving the extra memory to the coefficient array ``B`` (experiment 1),
* giving the extra memory to the streamed array ``A`` (experiment 2), and
* the compiler's three allocation policies (equal / proportional / search),

showing that the streamed array should get the larger slab because enlarging
it also reduces how often the coefficient array is re-read.

Run with::

    python examples/memory_allocation_study.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.analysis.report import format_table
from repro.config import ExecutionMode
from repro.experiments import Table2Config, run_memory_allocation_ablation, run_table2
from repro.experiments.ablations import MemoryAllocationAblationConfig


def main() -> int:
    # Execute-mode Table 2 at a reduced size: files are really created and read.
    config = Table2Config(
        n=96, nprocs=4, fixed_lines=4, varied_lines=(4, 8, 16, 24),
        mode=ExecutionMode.EXECUTE,
    )
    result = run_table2(config)
    print(result["table"])
    best = result["best"]
    print(
        f"\ngrowing the slab of B reaches {best['vary_b']['time']:.3f}s; "
        f"growing the slab of A reaches {best['vary_a']['time']:.3f}s "
        "(the streamed array deserves the memory)\n"
    )

    # Compiler allocation policies at the paper scale (analytic).
    ablation = run_memory_allocation_ablation(
        MemoryAllocationAblationConfig(n=1024, nprocs=16, memory_budget_bytes=256 * 1024)
    )
    print(ablation["table"])

    rows = [
        [r["policy"], f"{r['predicted_total_time']:.2f}"] for r in ablation["rows"]
    ]
    print()
    print(format_table(["policy", "predicted total time (s)"], rows,
                       title="Summary: allocation policy vs predicted time"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
